package womcode

import (
	"fmt"
	"math/bits"
)

// Verify exhaustively checks that c satisfies the WOM property: starting
// from the initial pattern, every sequence of Writes() data values can be
// encoded with only legal wit transitions (0→1 for conventional codes, 1→0
// for inverted codes) and every intermediate pattern decodes to the value
// most recently written. The search space is v^t codeword sequences, so this
// is intended for the small codes used per symbol (RS223: 16 sequences;
// Parity(8): 256).
//
// Verify also checks structural invariants: Initial() decodes to value 0 for
// conventional orientation consistency is not required, but the initial
// pattern must be within the wit mask and DataBits/Wits/Writes must be
// positive.
func Verify(c Code) error {
	if c.DataBits() < 1 || c.Wits() < 1 || c.Writes() < 1 {
		return fmt.Errorf("womcode: %s: non-positive parameters (k=%d n=%d t=%d)",
			c.Name(), c.DataBits(), c.Wits(), c.Writes())
	}
	if c.Wits() > 64 {
		return fmt.Errorf("womcode: %s: %d wits exceed the 64-bit codeword limit", c.Name(), c.Wits())
	}
	if c.Initial()&^WitMask(c) != 0 {
		return fmt.Errorf("womcode: %s: initial pattern %#x outside wit mask", c.Name(), c.Initial())
	}
	if c.DataBits() > 20 {
		return fmt.Errorf("womcode: %s: %d data bits too large for exhaustive verification", c.Name(), c.DataBits())
	}
	return verifySeq(c, c.Initial(), 0)
}

// verifySeq explores every data sequence from generation gen onward.
func verifySeq(c Code, current uint64, gen int) error {
	if gen == c.Writes() {
		return nil
	}
	v := uint64(1) << uint(c.DataBits())
	for data := uint64(0); data < v; data++ {
		next, err := c.Encode(current, data, gen)
		if err != nil {
			return fmt.Errorf("womcode: %s: gen %d, state %0*b, data %0*b: %w",
				c.Name(), gen, c.Wits(), current, c.DataBits(), data, err)
		}
		if !legalTransition(c, current, next) {
			return fmt.Errorf("womcode: %s: gen %d: illegal transition %0*b → %0*b for data %0*b",
				c.Name(), gen, c.Wits(), current, c.Wits(), next, c.DataBits(), data)
		}
		if got := c.Decode(next); got != data {
			return fmt.Errorf("womcode: %s: gen %d: pattern %0*b decodes to %0*b, wrote %0*b",
				c.Name(), gen, c.Wits(), next, c.DataBits(), got, c.DataBits(), data)
		}
		if err := verifySeq(c, next, gen+1); err != nil {
			return err
		}
	}
	return nil
}

// CostModel summarizes the programming cost of one write with a code under
// the PCM latency asymmetry, used by analytic bounds and ablation benches.
type CostModel struct {
	// ResetLatency is L, the fast RESET row-write latency.
	ResetLatency int64
	// Slowdown is S ≥ 1: SET latency = S·L (the paper uses S = 150/40).
	Slowdown float64
}

// RewriteBound returns the paper's §3.2 upper bound on the write-latency
// improvement of a k-rewrite WOM-code PCM: any k consecutive writes cost
// (k−1)·L + S·L against k·S·L uncoded, so the normalized latency is bounded
// below by (k−1+S)/(k·S).
func (m CostModel) RewriteBound(k int) float64 {
	if k < 1 {
		return 1
	}
	return (float64(k) - 1 + m.Slowdown) / (float64(k) * m.Slowdown)
}

// MaxSETTransitions returns the worst-case number of SET (slow) transitions
// a single in-budget write can require with code c in PCM orientation. For a
// correctly inverted code this is 0 — the property the whole architecture
// rests on. Conventional-orientation codes return a positive count.
func MaxSETTransitions(c Code) (int, error) {
	if c.DataBits() > 20 {
		return 0, fmt.Errorf("womcode: %s: too large for exhaustive scan", c.Name())
	}
	max := 0
	var walk func(current uint64, gen int) error
	walk = func(current uint64, gen int) error {
		if gen == c.Writes() {
			return nil
		}
		v := uint64(1) << uint(c.DataBits())
		for data := uint64(0); data < v; data++ {
			next, err := c.Encode(current, data, gen)
			if err != nil {
				return err
			}
			if sets := bits.OnesCount64(next &^ current); sets > max {
				max = sets
			}
			if err := walk(next, gen+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(c.Initial(), 0); err != nil {
		return 0, err
	}
	return max, nil
}
