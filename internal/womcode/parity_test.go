package womcode

import (
	"errors"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestParityParameters(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64} {
		c := Parity(n)
		if c.DataBits() != 1 || c.Wits() != n || c.Writes() != n {
			t.Errorf("Parity(%d): parameters (%d,%d,%d)", n, c.DataBits(), c.Wits(), c.Writes())
		}
		if c.Initial() != 0 || c.Inverted() {
			t.Errorf("Parity(%d): bad initial state", n)
		}
	}
}

func TestParityPanicsOnBadWidth(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Parity(%d) did not panic", n)
				}
			}()
			Parity(n)
		}()
	}
}

// TestParityWritesFullBudget drives a Parity(n) codeword through n
// alternating writes — the worst case, each flipping the stored bit — and
// checks decode at every step.
func TestParityWritesFullBudget(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8} {
		c := Parity(n)
		cur := c.Initial()
		for gen := 0; gen < n; gen++ {
			want := uint64(gen+1) & 1 // alternate 1,0,1,...
			next, err := c.Encode(cur, want, gen)
			if err != nil {
				t.Fatalf("Parity(%d) gen %d: %v", n, gen, err)
			}
			if next&cur != cur {
				t.Fatalf("Parity(%d) gen %d cleared a wit: %b → %b", n, gen, cur, next)
			}
			if got := c.Decode(next); got != want {
				t.Fatalf("Parity(%d) gen %d decodes %d, want %d", n, gen, got, want)
			}
			if bits.OnesCount64(next) != bits.OnesCount64(cur)+1 {
				t.Fatalf("Parity(%d) gen %d programmed %d wits, want exactly 1",
					n, gen, bits.OnesCount64(next)-bits.OnesCount64(cur))
			}
			cur = next
		}
		// Budget exhausted: flipping again must fail.
		if _, err := c.Encode(cur, uint64(n)&1, n-1); err == nil {
			// gen n-1 with all wits set and a flip request:
			t.Fatalf("Parity(%d): expected failure after exhausting wits", n)
		}
	}
}

// TestParitySameValueIsFree: rewriting the stored value consumes no wits.
func TestParitySameValueIsFree(t *testing.T) {
	c := Parity(4)
	cur, err := c.Encode(c.Initial(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for gen := 1; gen < 4; gen++ {
		next, err := c.Encode(cur, 1, gen)
		if err != nil {
			t.Fatal(err)
		}
		if next != cur {
			t.Fatalf("gen %d rewrite of same value changed %b → %b", gen, cur, next)
		}
	}
}

func TestParityErrors(t *testing.T) {
	c := Parity(3)
	if _, err := c.Encode(0, 2, 0); !errors.Is(err, ErrDataRange) {
		t.Errorf("data range: %v", err)
	}
	if _, err := c.Encode(0, 0, 3); !errors.Is(err, ErrGenRange) {
		t.Errorf("gen range: %v", err)
	}
	if _, err := c.Encode(0b1000, 0, 0); !errors.Is(err, ErrInvalidState) {
		t.Errorf("pattern outside mask: %v", err)
	}
	// Two wits programmed but claiming generation 1 is inconsistent.
	if _, err := c.Encode(0b011, 0, 1); !errors.Is(err, ErrInvalidState) {
		t.Errorf("desynced generation: %v", err)
	}
	// All wits used at the final generation: before the gen-th write at
	// most gen wits can be programmed, so this is a desynced state too.
	if _, err := c.Encode(0b111, 0, 2); !errors.Is(err, ErrInvalidState) {
		t.Errorf("exhausted codeword: %v", err)
	}
}

// TestParityQuickProperty: for random write sequences within budget, decode
// always tracks the last value written and transitions stay monotone.
func TestParityQuickProperty(t *testing.T) {
	c := Parity(8)
	prop := func(seq [8]bool) bool {
		cur := c.Initial()
		for gen, b := range seq {
			data := uint64(0)
			if b {
				data = 1
			}
			next, err := c.Encode(cur, data, gen)
			if err != nil {
				return false
			}
			if next&cur != cur || c.Decode(next) != data {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestInvertedParity exercises the inverted wrapper over a different inner
// code than RS223.
func TestInvertedParity(t *testing.T) {
	c := Invert(Parity(5))
	if !c.Inverted() || c.Initial() != 0b11111 {
		t.Fatalf("bad inverted parity: initial %b", c.Initial())
	}
	if err := Verify(c); err != nil {
		t.Fatal(err)
	}
	if n, err := MaxSETTransitions(c); err != nil || n != 0 {
		t.Errorf("inverted parity max SETs = %d (%v), want 0", n, err)
	}
}
