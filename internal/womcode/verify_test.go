package womcode

import (
	"math"
	"strings"
	"testing"
)

// TestVerifyAllShippedCodes: every code the package exports must pass the
// exhaustive WOM-property check in both orientations.
func TestVerifyAllShippedCodes(t *testing.T) {
	codes := []Code{
		RS223(),
		InvRS223(),
		Parity(1),
		Parity(2),
		Parity(4),
		Parity(8),
		Invert(Parity(3)),
		Invert(Parity(6)),
	}
	for _, c := range codes {
		if err := Verify(c); err != nil {
			t.Errorf("Verify(%s): %v", c.Name(), err)
		}
	}
}

// brokenCode violates the WOM property on purpose: its second write of a
// differing value reuses the first-write table, clearing wits.
type brokenCode struct{ Code }

func (b brokenCode) Encode(current, data uint64, gen int) (uint64, error) {
	if gen > 0 {
		return rs223First[data], nil
	}
	return b.Code.Encode(current, data, gen)
}

func TestVerifyCatchesIllegalTransition(t *testing.T) {
	err := Verify(brokenCode{RS223()})
	if err == nil {
		t.Fatal("Verify accepted a code that clears wits")
	}
	if !strings.Contains(err.Error(), "illegal transition") {
		t.Errorf("unexpected error: %v", err)
	}
}

// misdecodeCode decodes everything as zero.
type misdecodeCode struct{ Code }

func (misdecodeCode) Decode(uint64) uint64 { return 0 }

func TestVerifyCatchesMisdecode(t *testing.T) {
	if err := Verify(misdecodeCode{RS223()}); err == nil {
		t.Fatal("Verify accepted a code that decodes incorrectly")
	}
}

// badParams trips the structural checks.
type badParams struct{ Code }

func (badParams) Writes() int { return 0 }

func TestVerifyCatchesBadParameters(t *testing.T) {
	if err := Verify(badParams{RS223()}); err == nil {
		t.Fatal("Verify accepted t = 0")
	}
}

type hugeCode struct{ Code }

func (hugeCode) DataBits() int { return 32 }

func TestVerifyRefusesHugeCodes(t *testing.T) {
	if err := Verify(hugeCode{RS223()}); err == nil {
		t.Fatal("Verify attempted an infeasible exhaustive search")
	}
}

// TestRewriteBound pins the §3.2 bound (k−1+S)/(kS) at the paper's numbers:
// S = 150/40 = 3.75, k = 2 gives 0.6333…, i.e. at most a 36.7 % write
// latency reduction for the <2^2>^2/3 code without PCM-refresh.
func TestRewriteBound(t *testing.T) {
	m := CostModel{ResetLatency: 40, Slowdown: 150.0 / 40.0}
	got := m.RewriteBound(2)
	want := (2 - 1 + 3.75) / (2 * 3.75)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RewriteBound(2) = %v, want %v", got, want)
	}
	if math.Abs(want-0.63333333) > 1e-6 {
		t.Errorf("paper bound check drifted: %v", want)
	}
	// Monotone: more rewrites → lower (better) bound, approaching 1/S.
	prev := math.Inf(1)
	for k := 1; k <= 64; k *= 2 {
		b := m.RewriteBound(k)
		if b >= prev {
			t.Errorf("RewriteBound(%d) = %v not decreasing (prev %v)", k, b, prev)
		}
		prev = b
	}
	if lim := 1 / m.Slowdown; prev < lim {
		t.Errorf("bound %v fell below asymptote 1/S = %v", prev, lim)
	}
	if m.RewriteBound(0) != 1 {
		t.Errorf("RewriteBound(0) should clamp to 1")
	}
}
