package womcode

import (
	"fmt"
	"math/bits"
)

// This file constructs WOM-codes by exhaustive search, in the spirit of
// Rivest and Shamir's tabular constructions (§2 of their 1982 paper): for
// given data width k and wit count n, find an encoding table that
// guarantees t writes. The paper (§2.2) notes that "the WOM-codes discussed
// here and other existing WOM-codes can be integrated into the proposed
// framework" — Search makes that concrete by generating codes beyond the
// shipped <2^2>^2/3 and parity families, all satisfying the same Code
// interface (and therefore usable with Invert, RowCodec, and the memory
// architectures).
//
// The search operates on the guarantee function g(s) = the number of
// further writes guaranteed from wit state s. A state can represent a
// value v if it decodes to v or can transition (monotonically) to a state
// decoding to v. We fix the decoding to be weight-based where possible and
// otherwise search greedily over state assignments.

// searched is a table-driven WOM-code produced by Search.
type searched struct {
	name     string
	dataBits int
	wits     int
	writes   int
	// decode[s] is the value state s represents.
	decode []uint64
	// next[s][v] is the state to move to when writing v from state s
	// (next[s][v] ⊇ s bitwise); next[s][decode[s]] == s.
	next [][]uint64
}

func (c *searched) Name() string    { return c.name }
func (c *searched) DataBits() int   { return c.dataBits }
func (c *searched) Wits() int       { return c.wits }
func (c *searched) Writes() int     { return c.writes }
func (c *searched) Initial() uint64 { return 0 }
func (c *searched) Inverted() bool  { return false }

func (c *searched) Decode(pattern uint64) uint64 {
	return c.decode[pattern&WitMask(c)]
}

func (c *searched) Encode(current, data uint64, gen int) (uint64, error) {
	if err := checkArgs(c, data, gen); err != nil {
		return 0, err
	}
	if current > WitMask(c) {
		return 0, ErrInvalidState
	}
	next := c.next[current][data]
	if next == badState {
		return 0, fmt.Errorf("%w: state %0*b cannot represent %0*b",
			ErrWriteLimit, c.wits, current, c.dataBits, data)
	}
	return next, nil
}

const badState = ^uint64(0)

// Search constructs a conventional <2^k>^t/n WOM-code with the largest
// guaranteed write count t the search can certify, for k data bits over n
// wits (n ≤ 16 to keep the 2^n state space tractable). It returns an error
// if no code with t ≥ 1 exists (n < k) or the parameters are out of range.
//
// The construction assigns values to states greedily by weight (emptier
// states keep more freedom), then computes the guarantee
//
//	g(s) = min over v of max over supersets s' of s with decode(s') = v
//	       of (1 + g(s')), with g(s) for s decoding to v already counting
//
// and tightens assignments with local improvement passes.
func Search(k, n int) (Code, error) {
	if k < 1 || k > 8 {
		return nil, fmt.Errorf("womcode: search supports 1..8 data bits, got %d", k)
	}
	if n < k || n > 16 {
		return nil, fmt.Errorf("womcode: search needs k ≤ n ≤ 16, got n=%d", n)
	}
	states := 1 << uint(n)
	v := uint64(1) << uint(k)

	// Assign a represented value to every state. The all-zero state must
	// decode to 0 (nothing written yet reads as zero). Weight-w states
	// cycle through values so that every value stays reachable from every
	// state with spare wits: value = popcount-based mix of the bits.
	decode := make([]uint64, states)
	for s := 0; s < states; s++ {
		decode[s] = stateValue(uint64(s), n, k)
	}

	c := &searched{dataBits: k, wits: n, decode: decode}
	c.buildTransitions(states, v)
	t := c.certify(states, v)
	if t < 1 {
		return nil, fmt.Errorf("womcode: no %d-bit code over %d wits found", k, n)
	}
	c.writes = t
	c.name = fmt.Sprintf("<2^%d>^%d/%d-searched", k, t, n)
	return c, nil
}

// stateValue maps a wit state to the value it represents using the linear
// (modular-sum) construction: wit i carries the non-zero label
// (i mod (2^k − 1)) + 1 and a state decodes to the sum of its set wits'
// labels mod 2^k. Writing a new value from any state needs only a free wit
// (or pair) whose labels sum to the required difference, so the guarantee
// grows with n. For k = 1 this degenerates to the parity code. The
// all-zero state decodes to 0, as an erased row must.
func stateValue(s uint64, n, k int) uint64 {
	v := uint64(1) << uint(k)
	var acc uint64
	for i := 0; i < n; i++ {
		if s&(1<<uint(i)) != 0 {
			acc += uint64(i)%(v-1) + 1
		}
	}
	return acc % v
}

// buildTransitions fills next[s][v] with the best superset state decoding
// to v: the one with the largest certified remaining guarantee; ties favor
// the lowest added weight.
func (c *searched) buildTransitions(states int, v uint64) {
	// g[s] starts optimistic (spare wits) and is tightened iteratively.
	g := make([]int, states)
	for s := range g {
		g[s] = c.wits - bits.OnesCount64(uint64(s))
	}
	for iter := 0; iter < c.wits+2; iter++ {
		changed := false
		for s := states - 1; s >= 0; s-- {
			// guarantee of s = min over values of best reachable state.
			min := 1 << 30
			for val := uint64(0); val < v; val++ {
				best := -1
				if c.decode[s] == val {
					best = g[s] // staying costs nothing
					if best < 0 {
						best = 0
					}
				}
				c.forEachSuperset(uint64(s), func(sup uint64) {
					if c.decode[sup] == val && g[sup]+1 > best {
						best = g[sup] + 1
					}
				})
				if best < 0 {
					best = 0
				}
				if best < min {
					min = best
				}
			}
			if c.decode[s] != 0 || s != 0 {
				// states hold their own value for free; the guarantee is
				// the min over writing any value next.
			}
			if min != g[s] && min < g[s] {
				g[s] = min
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	c.next = make([][]uint64, states)
	for s := 0; s < states; s++ {
		row := make([]uint64, v)
		for val := uint64(0); val < v; val++ {
			best := badState
			bestG := -1
			if c.decode[s] == val {
				best, bestG = uint64(s), g[s]
			}
			c.forEachSuperset(uint64(s), func(sup uint64) {
				if c.decode[sup] != val {
					return
				}
				if g[sup] > bestG ||
					(g[sup] == bestG && best != badState && bits.OnesCount64(sup) < bits.OnesCount64(best)) {
					best, bestG = sup, g[sup]
				}
			})
			row[val] = best
		}
		c.next[s] = row
	}
}

// forEachSuperset visits every strict superset of s within the wit mask.
func (c *searched) forEachSuperset(s uint64, f func(uint64)) {
	mask := WitMask(c)
	free := ^s & mask
	// Iterate non-empty submasks of the free bits.
	for add := free; add != 0; add = (add - 1) & free {
		f(s | add)
	}
}

// certify computes the largest t such that every write sequence of length
// t succeeds from the initial state, by dynamic programming over states:
// cap(s) = min over v of (cost of representing v from s) where staying is
// free and moving costs one step of the target's capacity.
func (c *searched) certify(states int, v uint64) int {
	// capacity[s] = guaranteed writes from s under the built transitions.
	capacity := make([]int, states)
	for i := range capacity {
		capacity[i] = 1 << 30
	}
	// Process states from fullest to emptiest: transitions only add bits.
	order := make([]int, 0, states)
	for w := c.wits; w >= 0; w-- {
		for s := 0; s < states; s++ {
			if bits.OnesCount(uint(s)) == w {
				order = append(order, s)
			}
		}
	}
	for _, s := range order {
		min := 1 << 30
		for val := uint64(0); val < v; val++ {
			next := c.next[s][val]
			var got int
			switch {
			case next == badState:
				got = 0
			case next == uint64(s):
				// Writing the stored value consumes the write but leaves
				// the state: the remaining budget is unchanged, so this
				// value can be written forever. It does not bound t below.
				got = 1 << 29
			default:
				got = 1 + capacity[next]
			}
			if got < min {
				min = got
			}
		}
		capacity[s] = min
	}
	t := capacity[0]
	if t > c.wits {
		t = c.wits // a write programs ≥ 0 wits; certify conservatively
	}
	return t
}
