package womcode

// inverted adapts a conventional WOM-code to the PCM orientation by
// complementing every wit pattern (the paper's Fig. 1(b)). Wits start at the
// all-ones "erased" state and every in-budget write performs only 1→0 RESET
// transitions, which are 3.75× faster than SET in the paper's timing.
//
// Because the inverted table can be generated offline, runtime complexity is
// identical to the conventional code; no per-bitline inverters (Fig. 1(a))
// are required.
type inverted struct {
	inner Code
}

// Invert returns the inverted twin of a conventional code c. Inverting an
// already-inverted code returns the original orientation.
func Invert(c Code) Code {
	if inv, ok := c.(inverted); ok {
		return inv.inner
	}
	return inverted{inner: c}
}

func (c inverted) Name() string    { return "inv" + c.inner.Name() }
func (c inverted) DataBits() int   { return c.inner.DataBits() }
func (c inverted) Wits() int       { return c.inner.Wits() }
func (c inverted) Writes() int     { return c.inner.Writes() }
func (c inverted) Initial() uint64 { return WitMask(c) }
func (c inverted) Inverted() bool  { return !c.inner.Inverted() }

func (c inverted) Encode(current, data uint64, gen int) (uint64, error) {
	mask := WitMask(c)
	if current&^mask != 0 {
		return 0, ErrInvalidState
	}
	next, err := c.inner.Encode(^current&mask, data, gen)
	if err != nil {
		return 0, err
	}
	return ^next & mask, nil
}

func (c inverted) Decode(pattern uint64) uint64 {
	return c.inner.Decode(^pattern & WitMask(c))
}

// InvRS223 returns the paper's working code: the inverted <2^2>^2/3
// Rivest–Shamir code in which every rewrite uses only RESET operations.
func InvRS223() Code { return Invert(RS223()) }
