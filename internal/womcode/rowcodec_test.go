package womcode

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"womcpcm/internal/bitvec"
)

func mustRowCodec(t *testing.T, c Code, bits int) *RowCodec {
	t.Helper()
	rc, err := NewRowCodec(c, bits)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestRowCodecSizes(t *testing.T) {
	tests := []struct {
		code     Code
		dataBits int
		encBits  int
	}{
		{InvRS223(), 512, 768}, // 64-byte line → 96 bytes, the 1.5× of §3.1
		{InvRS223(), 2, 3},     // single symbol
		{InvRS223(), 3, 6},     // padded final symbol
		{Parity(4), 8, 32},     // 1-bit symbols
		{RS223(), 8192, 12288}, // 1 KB row
	}
	for _, tt := range tests {
		rc := mustRowCodec(t, tt.code, tt.dataBits)
		if rc.EncodedBits() != tt.encBits {
			t.Errorf("%s over %d bits: EncodedBits = %d, want %d",
				tt.code.Name(), tt.dataBits, rc.EncodedBits(), tt.encBits)
		}
		if rc.EncodedBytes() != (tt.encBits+7)/8 {
			t.Errorf("%s: EncodedBytes = %d", tt.code.Name(), rc.EncodedBytes())
		}
		if rc.DataBytes() != (tt.dataBits+7)/8 {
			t.Errorf("%s: DataBytes = %d", tt.code.Name(), rc.DataBytes())
		}
	}
}

func TestRowCodecRejectsBadWidth(t *testing.T) {
	if _, err := NewRowCodec(InvRS223(), 0); err == nil {
		t.Error("accepted zero-width row")
	}
	if _, err := NewRowCodec(InvRS223(), -8); err == nil {
		t.Error("accepted negative-width row")
	}
}

// TestRowCodecRoundTrip drives full rows through both write generations of
// the paper's code and checks exact recovery plus RESET-only transitions.
func TestRowCodecRoundTrip(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 512)
	rng := rand.New(rand.NewSource(1))
	row := rc.InitialRow()
	for gen := 0; gen < rc.Writes(); gen++ {
		data := make([]byte, rc.DataBytes())
		rng.Read(data)
		next, err := rc.Encode(row, data, gen)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		sets, _ := rc.Transitions(row, next)
		if sets != 0 {
			t.Fatalf("gen %d required %d SET transitions; inverted WOM writes must be RESET-only", gen, sets)
		}
		got, err := rc.Decode(next)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("gen %d: decode mismatch", gen)
		}
		row = next
	}
	// A third write of different data must fail: the rewrite limit.
	data := make([]byte, rc.DataBytes())
	rng.Read(data)
	if _, err := rc.Encode(row, data, 1); err == nil {
		// Note: gen beyond Writes()-1 is rejected by gen check; reusing the
		// final gen from an exhausted state must also fail for some symbol.
		t.Log("third write with stale gen unexpectedly succeeded (all symbols happened to repeat)")
	}
}

// TestRowCodecInitialRow: the initial row must decode to all-zero data for
// both orientations and contain only erased codewords.
func TestRowCodecInitialRow(t *testing.T) {
	for _, code := range []Code{RS223(), InvRS223()} {
		rc := mustRowCodec(t, code, 64)
		row := rc.InitialRow()
		for s := 0; s < 32; s++ {
			if got := bitvec.GetField(row, s*3, 3); got != code.Initial() {
				t.Errorf("%s symbol %d initial = %03b, want %03b", code.Name(), s, got, code.Initial())
			}
		}
		data, err := rc.Decode(row)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			if b != 0 {
				t.Errorf("%s: initial row decodes non-zero", code.Name())
				break
			}
		}
	}
}

// TestRowCodecPaddedRow exercises a row width that is not a multiple of the
// symbol width.
func TestRowCodecPaddedRow(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 13) // 7 symbols, last carries 1 bit
	row := rc.InitialRow()
	data := []byte{0xAB, 0x15} // 13 bits: 0b1_0101_1010_1011
	next, err := rc.Encode(row, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.Decode(next)
	if err != nil {
		t.Fatal(err)
	}
	if !bitvec.Equal(got, data, 13) {
		t.Fatalf("padded row: decoded %x, want first 13 bits of %x", got, data)
	}
}

func TestRowCodecEncodeErrors(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 64)
	short := make([]byte, rc.EncodedBytes()-1)
	data := make([]byte, rc.DataBytes())
	if _, err := rc.Encode(short, data, 0); err == nil {
		t.Error("accepted short encoded row")
	}
	if _, err := rc.Encode(rc.InitialRow(), data[:len(data)-1], 0); err == nil {
		t.Error("accepted short data row")
	}
	if _, err := rc.Encode(rc.InitialRow(), data, 5); err == nil {
		t.Error("accepted out-of-range generation")
	}
	if _, err := rc.Decode(short); err == nil {
		t.Error("decoded short row")
	}
}

// TestRowCodecEncodeDoesNotMutate: Encode must not modify its inputs.
func TestRowCodecEncodeDoesNotMutate(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 128)
	row := rc.InitialRow()
	before := bitvec.Clone(row)
	data := bytes.Repeat([]byte{0x5A}, rc.DataBytes())
	if _, err := rc.Encode(row, data, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(row, before) {
		t.Error("Encode mutated the current row")
	}
}

// TestRowCodecQuickRoundTrip is the property-based form of the round trip:
// any two random data rows can be written in sequence and always decode.
func TestRowCodecQuickRoundTrip(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 64)
	prop := func(d0, d1 uint64) bool {
		var b0, b1 [8]byte
		bitvec.SetField(b0[:], 0, 64, d0)
		bitvec.SetField(b1[:], 0, 64, d1)
		row := rc.InitialRow()
		row, err := rc.Encode(row, b0[:], 0)
		if err != nil {
			return false
		}
		if got, _ := rc.Decode(row); bitvec.GetField(got, 0, 64) != d0 {
			return false
		}
		row, err = rc.Encode(row, b1[:], 1)
		if err != nil {
			return false
		}
		got, _ := rc.Decode(row)
		return bitvec.GetField(got, 0, 64) == d1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRowCodecTransitionsBaseline sanity-checks the transition counter
// against a hand-computed pair.
func TestRowCodecTransitionsBaseline(t *testing.T) {
	rc := mustRowCodec(t, InvRS223(), 2)
	cur := []byte{0b111}
	next := []byte{0b010}
	sets, resets := rc.Transitions(cur, next)
	if sets != 0 || resets != 2 {
		t.Errorf("Transitions = (%d sets, %d resets), want (0, 2)", sets, resets)
	}
	sets, resets = rc.Transitions(next, cur)
	if sets != 2 || resets != 0 {
		t.Errorf("reverse Transitions = (%d sets, %d resets), want (2, 0)", sets, resets)
	}
}
