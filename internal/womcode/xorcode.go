package womcode

import (
	"fmt"
	"math/bits"
)

// xorCode is the Rivest–Shamir linear generalization of Table 1: a
// <2^k>^2/(2^k−1) WOM-code. Wits are indexed 1..2^k−1 and a state decodes
// to the XOR of its set wits' indices. The paper's Table 1 is exactly the
// k = 2 instance (3 wits, 2 writes); larger k trades a deeper overhead
// curve — (2^k−1)/k wits per bit — against the same 2-write guarantee, the
// family Rivest and Shamir use to approach the information-theoretic rate.
//
//	write 1: set the single wit indexed by the data (data 0 sets none)
//	write 2: to move the decode by Δ = old ⊕ new, set wit Δ if it is
//	         still clear, else set two clear wits a, b with a ⊕ b = Δ
//
// After write 1 at most one wit is set, so write 2 always finds its wit or
// pair among the ≥ 2^k−2 clear wits (for k ≥ 2).
type xorCode struct {
	k int
	n int
}

// XOR returns the <2^k>^2/(2^k−1) code for k data bits, 2 ≤ k ≤ 6.
func XOR(k int) Code {
	if k < 2 || k > 6 {
		panic(fmt.Sprintf("womcode: XOR code supports 2..6 data bits, got %d", k))
	}
	return xorCode{k: k, n: 1<<uint(k) - 1}
}

func (c xorCode) Name() string  { return fmt.Sprintf("<2^%d>^2/%d", c.k, c.n) }
func (c xorCode) DataBits() int { return c.k }
func (c xorCode) Wits() int     { return c.n }
func (xorCode) Writes() int     { return 2 }
func (xorCode) Initial() uint64 { return 0 }
func (xorCode) Inverted() bool  { return false }

// Decode XORs the (1-based) indices of all set wits; wit index i is stored
// at bit i−1.
func (c xorCode) Decode(pattern uint64) uint64 {
	var acc uint64
	p := pattern & WitMask(c)
	for p != 0 {
		bit := bits.TrailingZeros64(p)
		acc ^= uint64(bit + 1)
		p &= p - 1
	}
	return acc
}

// witBit returns the pattern bit holding wit index i (1-based).
func witBit(i uint64) uint64 { return 1 << (i - 1) }

func (c xorCode) Encode(current, data uint64, gen int) (uint64, error) {
	if err := checkArgs(c, data, gen); err != nil {
		return 0, err
	}
	mask := WitMask(c)
	if current&^mask != 0 {
		return 0, ErrInvalidState
	}
	cur := c.Decode(current)
	if cur == data {
		return current, nil
	}
	delta := cur ^ data
	if gen == 0 && current != 0 {
		return 0, ErrInvalidState
	}
	// Single-wit move.
	if current&witBit(delta) == 0 {
		return current | witBit(delta), nil
	}
	// Pair move: find clear a < b with a ⊕ b = delta.
	for a := uint64(1); a <= uint64(c.n); a++ {
		b := a ^ delta
		if b <= a || b > uint64(c.n) {
			continue
		}
		if current&witBit(a) == 0 && current&witBit(b) == 0 {
			return current | witBit(a) | witBit(b), nil
		}
	}
	return 0, fmt.Errorf("%w: state %0*b cannot reach %0*b",
		ErrWriteLimit, c.n, current, c.k, data)
}
