package womcode

import (
	"errors"
	"testing"
)

// TestRS223MatchesTable1 pins the code to the paper's Table 1, pattern by
// pattern, in both orientations.
func TestRS223MatchesTable1(t *testing.T) {
	c := RS223()
	table := []struct {
		data          uint64
		first, second uint64
	}{
		{0b00, 0b000, 0b111},
		{0b01, 0b100, 0b011},
		{0b10, 0b010, 0b101},
		{0b11, 0b001, 0b110},
	}
	for _, row := range table {
		first, err := c.Encode(c.Initial(), row.data, 0)
		if err != nil {
			t.Fatalf("Encode(gen 0, %02b): %v", row.data, err)
		}
		if first != row.first {
			t.Errorf("first write of %02b = %03b, Table 1 says %03b", row.data, first, row.first)
		}
		// Second write must produce r'(y) for every y != x.
		for _, prev := range table {
			if prev.data == row.data {
				continue
			}
			second, err := c.Encode(prev.first, row.data, 1)
			if err != nil {
				t.Fatalf("Encode(gen 1, from %03b, %02b): %v", prev.first, row.data, err)
			}
			if second != row.second {
				t.Errorf("second write of %02b from %03b = %03b, Table 1 says %03b",
					row.data, prev.first, second, row.second)
			}
		}
	}
}

// TestRS223DecodeFormula checks the paper's decoding rule u=b⊕c, v=a⊕c over
// all 8 patterns.
func TestRS223DecodeFormula(t *testing.T) {
	c := RS223()
	for p := uint64(0); p < 8; p++ {
		a, b, cc := p>>2&1, p>>1&1, p&1
		want := (b^cc)<<1 | (a ^ cc)
		if got := c.Decode(p); got != want {
			t.Errorf("Decode(%03b) = %02b, want %02b", p, got, want)
		}
	}
}

func TestRS223Parameters(t *testing.T) {
	c := RS223()
	if c.Name() != "<2^2>^2/3" {
		t.Errorf("Name() = %q", c.Name())
	}
	if c.DataBits() != 2 || c.Wits() != 3 || c.Writes() != 2 {
		t.Errorf("parameters = (%d,%d,%d), want (2,3,2)", c.DataBits(), c.Wits(), c.Writes())
	}
	if c.Initial() != 0 || c.Inverted() {
		t.Errorf("Initial()=%b Inverted()=%v, want 0,false", c.Initial(), c.Inverted())
	}
	if got := Overhead(c); got != 0.5 {
		t.Errorf("Overhead = %v, want 0.5", got)
	}
}

// TestRS223SecondWriteSameValue: rewriting the stored value must leave the
// codeword untouched (r'(x) is not a superset of r(x), see Table 1).
func TestRS223SecondWriteSameValue(t *testing.T) {
	c := RS223()
	for data := uint64(0); data < 4; data++ {
		first, err := c.Encode(0, data, 0)
		if err != nil {
			t.Fatal(err)
		}
		second, err := c.Encode(first, data, 1)
		if err != nil {
			t.Fatalf("rewrite of same value %02b: %v", data, err)
		}
		if second != first {
			t.Errorf("rewriting %02b changed pattern %03b → %03b", data, first, second)
		}
	}
}

// TestRS223OnlySetTransitions: conventional orientation may only program
// wits 0→1 across both writes.
func TestRS223OnlySetTransitions(t *testing.T) {
	c := RS223()
	for x := uint64(0); x < 4; x++ {
		first, _ := c.Encode(0, x, 0)
		for y := uint64(0); y < 4; y++ {
			second, err := c.Encode(first, y, 1)
			if err != nil {
				t.Fatal(err)
			}
			if second&first != first {
				t.Errorf("write %02b then %02b cleared wits: %03b → %03b", x, y, first, second)
			}
		}
	}
}

func TestRS223Errors(t *testing.T) {
	c := RS223()
	if _, err := c.Encode(0, 4, 0); !errors.Is(err, ErrDataRange) {
		t.Errorf("data out of range: got %v, want ErrDataRange", err)
	}
	if _, err := c.Encode(0, 0, 2); !errors.Is(err, ErrGenRange) {
		t.Errorf("gen out of range: got %v, want ErrGenRange", err)
	}
	if _, err := c.Encode(0, 0, -1); !errors.Is(err, ErrGenRange) {
		t.Errorf("negative gen: got %v, want ErrGenRange", err)
	}
	if _, err := c.Encode(0b100, 0, 0); !errors.Is(err, ErrInvalidState) {
		t.Errorf("gen-0 encode from dirty state: got %v, want ErrInvalidState", err)
	}
	// From a second-generation pattern, writing a different value cannot
	// proceed with only 0→1 transitions.
	if _, err := c.Encode(0b011, 0b10, 1); !errors.Is(err, ErrInvalidState) {
		t.Errorf("over-limit rewrite: got %v, want ErrInvalidState", err)
	}
}

// TestInvRS223 verifies the inverted code's polarity: erased state is all
// ones and every in-budget write is RESET-only (no 0→1 transitions).
func TestInvRS223(t *testing.T) {
	c := InvRS223()
	if !c.Inverted() {
		t.Fatal("InvRS223 not inverted")
	}
	if c.Initial() != 0b111 {
		t.Fatalf("Initial() = %03b, want 111", c.Initial())
	}
	if c.Name() != "inv<2^2>^2/3" {
		t.Errorf("Name() = %q", c.Name())
	}
	for x := uint64(0); x < 4; x++ {
		first, err := c.Encode(c.Initial(), x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if first&^c.Initial() != 0 {
			t.Errorf("first write of %02b set wits: %03b", x, first)
		}
		if got := c.Decode(first); got != x {
			t.Errorf("Decode(first %03b) = %02b, want %02b", first, got, x)
		}
		for y := uint64(0); y < 4; y++ {
			second, err := c.Encode(first, y, 1)
			if err != nil {
				t.Fatal(err)
			}
			// RESET-only: second may clear wits of first but never set.
			if second&^first != 0 {
				t.Errorf("write %02b then %02b required SET: %03b → %03b", x, y, first, second)
			}
			if got := c.Decode(second); got != y {
				t.Errorf("Decode(second %03b) = %02b, want %02b", second, got, y)
			}
		}
	}
}

// TestInvRS223MatchesComplementedTable checks Fig. 1(b): the inverted table
// is the bitwise complement of Table 1.
func TestInvRS223MatchesComplementedTable(t *testing.T) {
	conv, inv := RS223(), InvRS223()
	for x := uint64(0); x < 4; x++ {
		cf, _ := conv.Encode(0, x, 0)
		ifirst, err := inv.Encode(0b111, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ifirst != ^cf&0b111 {
			t.Errorf("inverted first(%02b) = %03b, want %03b", x, ifirst, ^cf&0b111)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	c := RS223()
	if got := Invert(Invert(c)); got != c {
		t.Errorf("Invert(Invert(c)) = %v, want original", got)
	}
}

// TestMaxSETTransitions: the inverted code must need zero SETs for any
// in-budget write; the conventional code needs up to 3.
func TestMaxSETTransitions(t *testing.T) {
	if n, err := MaxSETTransitions(InvRS223()); err != nil || n != 0 {
		t.Errorf("inverted code max SETs = %d (%v), want 0", n, err)
	}
	if n, err := MaxSETTransitions(RS223()); err != nil || n == 0 {
		t.Errorf("conventional code max SETs = %d (%v), want > 0", n, err)
	}
}
