package womcode

import (
	"fmt"

	"womcpcm/internal/bitvec"
)

// RowCodec applies a WOM-code symbol-wise across a whole memory row, the
// unit at which the paper's architectures encode data (§3.1: "the WOM-code
// can encode the data at the row-level"; the wide-column organization widens
// each column from Z to Z·Wits/DataBits bits to hold the extra wits).
//
// A row of D data bits is split into ceil(D/k) k-bit symbols, each stored in
// its own n-wit codeword; codewords are packed consecutively, LSB-first.
// All symbols of a row share one write generation: the memory controller
// rewrites whole rows, so per-symbol generations would never diverge.
type RowCodec struct {
	code     Code
	dataBits int
	symbols  int
}

// NewRowCodec returns a codec that stores dataBits bits per row using code.
// dataBits must be positive; rows whose size is not a multiple of the code's
// data width get a zero-padded final symbol.
func NewRowCodec(code Code, dataBits int) (*RowCodec, error) {
	if dataBits <= 0 {
		return nil, fmt.Errorf("womcode: row data width must be positive, got %d", dataBits)
	}
	k := code.DataBits()
	return &RowCodec{
		code:     code,
		dataBits: dataBits,
		symbols:  (dataBits + k - 1) / k,
	}, nil
}

// Code returns the per-symbol code in use.
func (rc *RowCodec) Code() Code { return rc.code }

// DataBits returns the row's data width in bits.
func (rc *RowCodec) DataBits() int { return rc.dataBits }

// EncodedBits returns the encoded row width in wits.
func (rc *RowCodec) EncodedBits() int { return rc.symbols * rc.code.Wits() }

// EncodedBytes returns the encoded row width in bytes.
func (rc *RowCodec) EncodedBytes() int { return (rc.EncodedBits() + 7) / 8 }

// DataBytes returns the data row width in bytes.
func (rc *RowCodec) DataBytes() int { return (rc.dataBits + 7) / 8 }

// Writes returns the code's guaranteed rewrite count t.
func (rc *RowCodec) Writes() int { return rc.code.Writes() }

// InitialRow returns a freshly erased encoded row: every codeword holds the
// code's initial pattern (all wits erased; all-ones for an inverted code).
func (rc *RowCodec) InitialRow() []byte {
	row := bitvec.New(rc.EncodedBits())
	init := rc.code.Initial()
	if init != 0 {
		n := rc.code.Wits()
		for s := 0; s < rc.symbols; s++ {
			bitvec.SetField(row, s*n, n, init)
		}
	}
	return row
}

// Encode computes the encoded row that stores data (DataBytes() bytes) as
// write generation gen, given the current encoded row. The returned slice is
// freshly allocated; current is not modified. Every codeword transition
// respects the code's write-once direction or the call fails.
func (rc *RowCodec) Encode(current, data []byte, gen int) ([]byte, error) {
	if len(current) < rc.EncodedBytes() {
		return nil, fmt.Errorf("womcode: encoded row is %d bytes, need %d", len(current), rc.EncodedBytes())
	}
	if len(data) < rc.DataBytes() {
		return nil, fmt.Errorf("womcode: data row is %d bytes, need %d", len(data), rc.DataBytes())
	}
	k, n := rc.code.DataBits(), rc.code.Wits()
	next := bitvec.Clone(current[:rc.EncodedBytes()])
	for s := 0; s < rc.symbols; s++ {
		width := k
		if off := s * k; off+width > rc.dataBits {
			width = rc.dataBits - off
		}
		sym := bitvec.GetField(data, s*k, width)
		cur := bitvec.GetField(current, s*n, n)
		enc, err := rc.code.Encode(cur, sym, gen)
		if err != nil {
			return nil, fmt.Errorf("womcode: symbol %d: %w", s, err)
		}
		bitvec.SetField(next, s*n, n, enc)
	}
	return next, nil
}

// Decode recovers the row's data bits from an encoded row.
func (rc *RowCodec) Decode(encoded []byte) ([]byte, error) {
	if len(encoded) < rc.EncodedBytes() {
		return nil, fmt.Errorf("womcode: encoded row is %d bytes, need %d", len(encoded), rc.EncodedBytes())
	}
	k, n := rc.code.DataBits(), rc.code.Wits()
	data := bitvec.New(rc.dataBits)
	for s := 0; s < rc.symbols; s++ {
		sym := rc.code.Decode(bitvec.GetField(encoded, s*n, n))
		width := k
		if off := s * k; off+width > rc.dataBits {
			width = rc.dataBits - off
		}
		bitvec.SetField(data, s*k, width, sym)
	}
	return data, nil
}

// Transitions reports the 0→1 (SET) and 1→0 (RESET) cell programming
// operations needed to move the stored row from cur to next. The timing
// model uses this to classify writes: a write with zero SET transitions
// completes at RESET latency.
func (rc *RowCodec) Transitions(cur, next []byte) (sets, resets int) {
	return bitvec.TransitionCounts(cur, next, rc.EncodedBits())
}
