package womcode

import (
	"errors"
	"testing"
	"testing/quick"
)

// TestXORCodesSatisfyWOMProperty: the whole family verifies exhaustively
// in both orientations, with zero SETs per in-budget inverted write.
func TestXORCodesSatisfyWOMProperty(t *testing.T) {
	for k := 2; k <= 5; k++ {
		c := XOR(k)
		if err := Verify(c); err != nil {
			t.Errorf("XOR(%d): %v", k, err)
		}
		if err := Verify(Invert(c)); err != nil {
			t.Errorf("inverted XOR(%d): %v", k, err)
		}
		if n, err := MaxSETTransitions(Invert(c)); err != nil || n != 0 {
			t.Errorf("inverted XOR(%d) needs %d SETs (%v)", k, n, err)
		}
	}
}

// TestXORMatchesTable1Parameters: k = 2 reproduces the paper's code's
// parameters exactly — 2-bit data, 3 wits, 2 writes, 50 % overhead.
func TestXORMatchesTable1Parameters(t *testing.T) {
	c := XOR(2)
	if c.DataBits() != 2 || c.Wits() != 3 || c.Writes() != 2 {
		t.Errorf("XOR(2) = (%d,%d,%d), want (2,3,2)", c.DataBits(), c.Wits(), c.Writes())
	}
	if Overhead(c) != 0.5 {
		t.Errorf("overhead = %v, want 0.5", Overhead(c))
	}
	if c.Name() != "<2^2>^2/3" {
		t.Errorf("name = %q", c.Name())
	}
	// The overhead curve: (2^k−1)/k − 1 rises with k.
	if o3, o4 := Overhead(XOR(3)), Overhead(XOR(4)); !(o3 > 0.5 && o4 > o3) {
		t.Errorf("overhead ladder broken: %v, %v", o3, o4)
	}
}

// TestXORWritePairMechanics: from a single-wit state, writing back the
// value 0 requires the two-wit move (the Δ wit is taken).
func TestXORWritePairMechanics(t *testing.T) {
	c := XOR(3)
	// Write 5 first: sets wit index 5 only.
	first, err := c.Encode(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first != witBit(5) {
		t.Fatalf("first write pattern = %b", first)
	}
	// Write 0: Δ = 5, wit 5 is set, so a clear pair a⊕b=5 must be used.
	second, err := c.Encode(first, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Decode(second) != 0 {
		t.Fatalf("decode = %d, want 0", c.Decode(second))
	}
	if second&first != first {
		t.Fatal("cleared a wit")
	}
	added := second &^ first
	if got := popcount(added); got != 2 {
		t.Fatalf("added %d wits, want 2", got)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestXORQuickRoundTrip: any (x, y) sequence encodes and decodes for every
// k, in the inverted orientation through a row codec.
func TestXORQuickRoundTrip(t *testing.T) {
	rc, err := NewRowCodec(Invert(XOR(4)), 32)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint32) bool {
		var d0, d1 [4]byte
		for i := 0; i < 4; i++ {
			d0[i], d1[i] = byte(a>>(8*i)), byte(b>>(8*i))
		}
		row := rc.InitialRow()
		row, err := rc.Encode(row, d0[:], 0)
		if err != nil {
			return false
		}
		if sets, _ := rc.Transitions(rc.InitialRow(), row); sets != 0 {
			return false
		}
		row2, err := rc.Encode(row, d1[:], 1)
		if err != nil {
			return false
		}
		if sets, _ := rc.Transitions(row, row2); sets != 0 {
			return false
		}
		got, err := rc.Decode(row2)
		if err != nil {
			return false
		}
		for i := range d1 {
			if got[i] != d1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestXORErrors(t *testing.T) {
	c := XOR(2)
	if _, err := c.Encode(0, 4, 0); !errors.Is(err, ErrDataRange) {
		t.Errorf("data range: %v", err)
	}
	if _, err := c.Encode(0, 0, 2); !errors.Is(err, ErrGenRange) {
		t.Errorf("gen range: %v", err)
	}
	if _, err := c.Encode(1<<10, 0, 0); !errors.Is(err, ErrInvalidState) {
		t.Errorf("state mask: %v", err)
	}
	if _, err := c.Encode(0b011, 2, 0); !errors.Is(err, ErrInvalidState) {
		t.Errorf("dirty gen-0 state: %v", err)
	}
	for _, k := range []int{1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("XOR(%d) did not panic", k)
				}
			}()
			XOR(k)
		}()
	}
}

// TestXORFunctionalIntegration: the k = 3 instance drives the functional
// memory (indirectly proving the §2.2 plug-in claim at a third code
// family; the arch layer only needs Writes()).
func TestXORFunctionalIntegration(t *testing.T) {
	code := Invert(XOR(3))
	rc, err := NewRowCodec(code, 24)
	if err != nil {
		t.Fatal(err)
	}
	// 24 data bits → 8 symbols × 7 wits = 56 wits.
	if rc.EncodedBits() != 56 {
		t.Fatalf("encoded bits = %d", rc.EncodedBits())
	}
	row := rc.InitialRow()
	for gen := 0; gen < 2; gen++ {
		data := []byte{byte(0x12 * (gen + 1)), 0x34, 0x56}
		row, err = rc.Encode(row, data, gen)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		got, err := rc.Decode(row)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != data[0] || got[1] != 0x34 || got[2] != 0x56 {
			t.Fatalf("gen %d decode mismatch: %x", gen, got)
		}
	}
}
