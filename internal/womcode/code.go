// Package womcode implements write-once-memory (WOM) codes for phase change
// memory, following Li and Mohanram, "Write-Once-Memory-Code Phase Change
// Memory", DATE 2014, and Rivest and Shamir, "How to reuse a write-once
// memory", Information and Control 55 (1982).
//
// A <v>^t/n WOM-code stores one of v values in n write-once bits ("wits")
// and guarantees t successive writes. In the conventional orientation wits
// start at 0 and may only be programmed 0→1. PCM has the opposite cost
// asymmetry — programming 1 (SET) is 5–10× slower than programming 0
// (RESET) — so the paper uses *inverted* WOM-codes: wits start at 1 and each
// in-budget rewrite performs only fast 1→0 RESET transitions. Invert turns
// any conventional Code into its inverted twin.
//
// The package provides the paper's <2^2>^2/3 Rivest–Shamir code (Table 1),
// a t-write parity code over n wits, a row-level codec that applies a code
// across an arbitrary-width memory row, a Flip-N-Write comparator encoder,
// and an exhaustive verifier for the WOM property.
package womcode

import (
	"errors"
	"fmt"
)

// Errors returned by Encode implementations.
var (
	// ErrWriteLimit indicates the codeword has exhausted its write budget:
	// the requested data cannot be represented without illegal transitions.
	ErrWriteLimit = errors.New("womcode: write limit reached")
	// ErrDataRange indicates the data value does not fit in DataBits().
	ErrDataRange = errors.New("womcode: data value out of range")
	// ErrGenRange indicates the write generation is outside [0, Writes()).
	ErrGenRange = errors.New("womcode: write generation out of range")
	// ErrInvalidState indicates the current wit pattern is not a state the
	// code can have produced at the given generation.
	ErrInvalidState = errors.New("womcode: invalid codeword state")
)

// Code is a write-once-memory code over a single codeword of Wits() wits.
//
// Encode computes the wit pattern that stores data as the gen-th write
// (0-based, gen < Writes()) given the current pattern. For a conventional
// code every returned pattern is a bitwise superset of current (only 0→1
// transitions); for an inverted code it is a subset (only 1→0 transitions).
// Decode recovers the stored value from a pattern and must not depend on the
// generation.
type Code interface {
	// Name returns the code's conventional designation, e.g. "<2^2>^2/3".
	Name() string
	// DataBits returns k, the number of data bits per codeword (v = 2^k).
	DataBits() int
	// Wits returns n, the number of wits per codeword.
	Wits() int
	// Writes returns t, the guaranteed number of writes per codeword.
	Writes() int
	// Initial returns the manufactured/erased wit pattern: 0 for a
	// conventional code, the all-ones mask for an inverted code.
	Initial() uint64
	// Inverted reports whether wits transition 1→0 (the PCM orientation).
	Inverted() bool
	// Encode returns the pattern storing data as write number gen.
	Encode(current, data uint64, gen int) (uint64, error)
	// Decode recovers the data stored in pattern.
	Decode(pattern uint64) uint64
}

// WitMask returns the mask covering all wits of c.
func WitMask(c Code) uint64 {
	return (uint64(1) << uint(c.Wits())) - 1
}

// DataMask returns the mask covering all data bits of c.
func DataMask(c Code) uint64 {
	return (uint64(1) << uint(c.DataBits())) - 1
}

// Overhead returns the code's memory overhead factor Wits()/DataBits() − 1,
// e.g. 0.5 for the <2^2>^2/3 code.
func Overhead(c Code) float64 {
	return float64(c.Wits())/float64(c.DataBits()) - 1
}

// checkArgs validates the data value and generation for c.
func checkArgs(c Code, data uint64, gen int) error {
	if data > DataMask(c) {
		return fmt.Errorf("%w: %#x does not fit in %d bits", ErrDataRange, data, c.DataBits())
	}
	if gen < 0 || gen >= c.Writes() {
		return fmt.Errorf("%w: gen %d, code allows %d writes", ErrGenRange, gen, c.Writes())
	}
	return nil
}

// legalTransition reports whether moving from cur to next respects the
// write-once direction of c.
func legalTransition(c Code, cur, next uint64) bool {
	if c.Inverted() {
		return next&cur == next // only 1→0
	}
	return next&cur == cur // only 0→1
}
