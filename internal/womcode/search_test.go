package womcode

import (
	"errors"
	"math/rand"
	"testing"
)

// TestSearchedCodesSatisfyWOMProperty: every searched code must pass the
// exhaustive verifier in both orientations.
func TestSearchedCodesSatisfyWOMProperty(t *testing.T) {
	for _, p := range []struct{ k, n int }{
		{1, 2}, {1, 4}, {2, 4}, {2, 5}, {2, 6}, {3, 7},
	} {
		c, err := Search(p.k, p.n)
		if err != nil {
			t.Fatalf("Search(%d,%d): %v", p.k, p.n, err)
		}
		if err := Verify(c); err != nil {
			t.Errorf("Search(%d,%d): %v", p.k, p.n, err)
		}
		if err := Verify(Invert(c)); err != nil {
			t.Errorf("inverted Search(%d,%d): %v", p.k, p.n, err)
		}
		if n, err := MaxSETTransitions(Invert(c)); err != nil || n != 0 {
			t.Errorf("inverted Search(%d,%d) needs %d SETs (%v)", p.k, p.n, n, err)
		}
	}
}

// TestSearchGuarantees pins the write counts the construction certifies.
func TestSearchGuarantees(t *testing.T) {
	tests := []struct{ k, n, wantT int }{
		{1, 2, 2}, // degenerates to the parity code: t = n
		{1, 4, 4},
		{1, 8, 8},
		{2, 4, 2},
		{2, 5, 3},
		{3, 7, 3},
	}
	for _, tt := range tests {
		c, err := Search(tt.k, tt.n)
		if err != nil {
			t.Fatalf("Search(%d,%d): %v", tt.k, tt.n, err)
		}
		if c.Writes() != tt.wantT {
			t.Errorf("Search(%d,%d) certifies t=%d, want %d", tt.k, tt.n, c.Writes(), tt.wantT)
		}
	}
}

// TestSearchCannotMatchHandcraftedRS223: the linear construction certifies
// only t=1 at (k=2, n=3) where Rivest–Shamir's handcrafted Table 1 achieves
// t=2 — which is exactly why the paper's code is worth shipping separately.
func TestSearchCannotMatchHandcraftedRS223(t *testing.T) {
	c, err := Search(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Writes() >= RS223().Writes() {
		t.Logf("search improved to t=%d; update the docs celebrating Table 1", c.Writes())
	}
	if c.Writes() < 1 {
		t.Error("searched code certifies no writes")
	}
}

// TestSearchParameterValidation covers the rejection paths.
func TestSearchParameterValidation(t *testing.T) {
	cases := []struct{ k, n int }{
		{0, 4}, {9, 12}, {2, 1}, {2, 17},
	}
	for _, c := range cases {
		if _, err := Search(c.k, c.n); err == nil {
			t.Errorf("Search(%d,%d) accepted", c.k, c.n)
		}
	}
}

// TestSearchedEncodeErrors: the searched code reports budget exhaustion and
// bad states through the package's error values.
func TestSearchedEncodeErrors(t *testing.T) {
	c, err := Search(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(0, 4, 0); !errors.Is(err, ErrDataRange) {
		t.Errorf("data range: %v", err)
	}
	if _, err := c.Encode(0, 0, c.Writes()); !errors.Is(err, ErrGenRange) {
		t.Errorf("gen range: %v", err)
	}
	if _, err := c.Encode(WitMask(c)+1, 0, 0); !errors.Is(err, ErrInvalidState) {
		t.Errorf("state range: %v", err)
	}
	// From the all-ones state, any differing value is unreachable.
	full := WitMask(c)
	for v := uint64(0); v < 4; v++ {
		if v == c.Decode(full) {
			continue
		}
		if _, err := c.Encode(full, v, c.Writes()-1); !errors.Is(err, ErrWriteLimit) {
			t.Errorf("exhausted state writing %02b: %v", v, err)
		}
	}
}

// TestSearchedRandomSequences: random in-budget write sequences always
// succeed with monotone transitions and correct decodes (beyond what the
// exhaustive verifier covers, this drives the inverted orientation through
// a row codec).
func TestSearchedRandomSequences(t *testing.T) {
	base, err := Search(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := Invert(base)
	rc, err := NewRowCodec(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		row := rc.InitialRow()
		for gen := 0; gen < rc.Writes(); gen++ {
			data := make([]byte, rc.DataBytes())
			rng.Read(data)
			next, err := rc.Encode(row, data, gen)
			if err != nil {
				t.Fatalf("trial %d gen %d: %v", trial, gen, err)
			}
			if sets, _ := rc.Transitions(row, next); sets != 0 {
				t.Fatalf("trial %d gen %d: %d SET transitions", trial, gen, sets)
			}
			got, err := rc.Decode(next)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != data[i] {
					t.Fatalf("trial %d gen %d: decode mismatch", trial, gen)
				}
			}
			row = next
		}
	}
}

// TestSearchedOverheadLadder: more wits buy more writes; overhead and
// guarantees move together, the paper's §3.2 trade.
func TestSearchedOverheadLadder(t *testing.T) {
	prev := 0
	for _, n := range []int{4, 5, 8, 10} {
		c, err := Search(2, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Writes() < prev {
			t.Errorf("t decreased from %d to %d when n grew to %d", prev, c.Writes(), n)
		}
		prev = c.Writes()
	}
	if prev < 4 {
		t.Errorf("Search(2,10) certifies only t=%d", prev)
	}
}
