package womcode

import (
	"fmt"
	"math/bits"
)

// parity is the classic <2>^n/n WOM-code: n wits store a single data bit as
// the parity of the number of programmed wits, and support n writes (each
// write programs at most one additional wit). It is the simplest member of
// the family Rivest and Shamir analyze and gives an arbitrarily high rewrite
// limit at linear overhead — useful here to study the paper's observation
// (§3.2) that a higher rewrite limit k raises the performance bound
// (k−1+S)/(kS) at the cost of memory.
type parity struct {
	n int
}

// Parity returns the conventional <2>^n/n parity WOM-code over n wits,
// 1 ≤ n ≤ 64.
func Parity(n int) Code {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("womcode: parity code needs 1..64 wits, got %d", n))
	}
	return parity{n: n}
}

func (c parity) Name() string  { return fmt.Sprintf("<2>^%d/%d", c.n, c.n) }
func (parity) DataBits() int   { return 1 }
func (c parity) Wits() int     { return c.n }
func (c parity) Writes() int   { return c.n }
func (parity) Initial() uint64 { return 0 }
func (parity) Inverted() bool  { return false }
func (c parity) Decode(p uint64) uint64 {
	return uint64(bits.OnesCount64(p&WitMask(c)) & 1)
}

func (c parity) Encode(current, data uint64, gen int) (uint64, error) {
	if err := checkArgs(c, data, gen); err != nil {
		return 0, err
	}
	mask := WitMask(c)
	if current&^mask != 0 {
		return 0, ErrInvalidState
	}
	used := bits.OnesCount64(current)
	if used > gen {
		// More wits are programmed than writes have happened; the caller's
		// generation bookkeeping is out of sync with the codeword.
		return 0, ErrInvalidState
	}
	if c.Decode(current) == data {
		return current, nil
	}
	if used == c.n {
		return 0, ErrWriteLimit
	}
	// Program the lowest unprogrammed wit to flip the parity.
	low := ^current & mask
	return current | (low & -low), nil
}
