package womcode

// rs223 is the Rivest–Shamir <2^2>^2/3 WOM-code of the paper's Table 1:
// 3 wits store a 2-bit value and can be written twice.
//
//	Data x="uv"  first write r(x)=abc  second write r'(x)=a'b'c'
//	00           000                   111
//	01           100                   011
//	10           010                   101
//	11           001                   110
//
// Wit "a" is stored at bit 2, "b" at bit 1 and "c" at bit 0 so the table
// rows read left-to-right as binary literals. Decoding is generation
// independent: u = b⊕c, v = a⊕c.
type rs223 struct{}

// RS223 returns the conventional (0→1) <2^2>^2/3 Rivest–Shamir code.
func RS223() Code { return rs223{} }

// rs223First is r(x): the first-write pattern for each 2-bit value.
var rs223First = [4]uint64{
	0b00: 0b000,
	0b01: 0b100,
	0b10: 0b010,
	0b11: 0b001,
}

// rs223Second is r'(x): the second-write pattern for each 2-bit value.
var rs223Second = [4]uint64{
	0b00: 0b111,
	0b01: 0b011,
	0b10: 0b101,
	0b11: 0b110,
}

func (rs223) Name() string    { return "<2^2>^2/3" }
func (rs223) DataBits() int   { return 2 }
func (rs223) Wits() int       { return 3 }
func (rs223) Writes() int     { return 2 }
func (rs223) Initial() uint64 { return 0 }
func (rs223) Inverted() bool  { return false }

func (c rs223) Encode(current, data uint64, gen int) (uint64, error) {
	if err := checkArgs(c, data, gen); err != nil {
		return 0, err
	}
	switch gen {
	case 0:
		if current != 0 {
			return 0, ErrInvalidState
		}
		return rs223First[data], nil
	default: // gen == 1
		// Rewriting the value already stored consumes the write but needs
		// no wit transitions; the second-write pattern r'(x) is NOT a
		// superset of r(x), so the codeword must stay as-is.
		if c.Decode(current) == data {
			return current, nil
		}
		next := rs223Second[data]
		if !legalTransition(c, current, next) {
			return 0, ErrInvalidState
		}
		return next, nil
	}
}

func (rs223) Decode(pattern uint64) uint64 {
	a := pattern >> 2 & 1
	b := pattern >> 1 & 1
	cc := pattern & 1
	u := b ^ cc
	v := a ^ cc
	return u<<1 | v
}
