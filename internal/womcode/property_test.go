package womcode

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// TestRS223QuickTwoWrites: any (x, y) pair survives the two-write protocol
// in both orientations with legal transitions and correct decodes.
func TestRS223QuickTwoWrites(t *testing.T) {
	for _, c := range []Code{RS223(), InvRS223()} {
		c := c
		prop := func(x, y uint8) bool {
			vx, vy := uint64(x%4), uint64(y%4)
			first, err := c.Encode(c.Initial(), vx, 0)
			if err != nil || c.Decode(first) != vx {
				return false
			}
			second, err := c.Encode(first, vy, 1)
			if err != nil || c.Decode(second) != vy {
				return false
			}
			return legalTransition(c, c.Initial(), first) && legalTransition(c, first, second)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestInvertDoubleComplement: Invert(Invert(c)) behaves identically to c on
// every first-write encode/decode.
func TestInvertDoubleComplement(t *testing.T) {
	orig := Parity(6)
	round := Invert(Invert(orig))
	prop := func(d uint8) bool {
		data := uint64(d % 2)
		a, errA := orig.Encode(orig.Initial(), data, 0)
		b, errB := round.Encode(round.Initial(), data, 0)
		return (errA == nil) == (errB == nil) && a == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRowCodecWidthsQuick: random data round-trips through the codec at
// awkward row widths with the searched code.
func TestRowCodecWidthsQuick(t *testing.T) {
	base, err := Search(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	code := Invert(base)
	for _, width := range []int{1, 2, 3, 7, 17, 64, 65, 127} {
		rc, err := NewRowCodec(code, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		prop := func(seed uint32) bool {
			data := make([]byte, rc.DataBytes())
			s := seed
			for i := range data {
				s = s*1664525 + 1013904223
				data[i] = byte(s >> 24)
			}
			// Mask padding bits beyond the row width.
			if width%8 != 0 {
				data[len(data)-1] &= byte(1<<uint(width%8)) - 1
			}
			enc, err := rc.Encode(rc.InitialRow(), data, 0)
			if err != nil {
				return false
			}
			got, err := rc.Decode(enc)
			if err != nil {
				return false
			}
			for i := range data {
				if got[i] != data[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

// TestMaxSETTransitionsMatchesVerifyWalk: for the conventional RS223 the
// worst case is setting all three wits (second write of 00 from state 000
// is illegal, but 000→111 happens when rewriting 00 over r(00)).
func TestMaxSETTransitionsRS223Value(t *testing.T) {
	n, err := MaxSETTransitions(RS223())
	if err != nil {
		t.Fatal(err)
	}
	// From r(11)=001, writing 00 programs 111: two SETs; from r(00)=000,
	// writing 11's r'(11)=110 programs two; the true max over the walk is 2
	// (first writes from 000 set at most one wit).
	if n != 2 {
		t.Errorf("max SETs = %d, want 2", n)
	}
}

// TestCostModelBoundQuick: the bound is always in (0, 1] for S ≥ 1 and
// decreases with k.
func TestCostModelBoundQuick(t *testing.T) {
	prop := func(s8, k8 uint8) bool {
		s := 1 + float64(s8%40)/4 // S in [1, 10.75]
		k := 1 + int(k8%32)
		m := CostModel{ResetLatency: 40, Slowdown: s}
		b := m.RewriteBound(k)
		if b <= 0 || b > 1 {
			return false
		}
		return m.RewriteBound(k+1) <= b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestSearchedDecodeTotal: the searched code's decode is defined on every
// pattern inside the wit mask (no panics, values in range).
func TestSearchedDecodeTotal(t *testing.T) {
	c, err := Search(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p <= WitMask(c); p++ {
		if v := c.Decode(p); v > DataMask(c) {
			t.Fatalf("Decode(%b) = %d out of range", p, v)
		}
	}
	// Weight-1 states decode to their wit's label — spot-check coverage:
	// all 2^k values must be reachable among low-weight states.
	seen := map[uint64]bool{}
	for p := uint64(0); p <= WitMask(c); p++ {
		if bits.OnesCount64(p) <= 2 {
			seen[c.Decode(p)] = true
		}
	}
	if len(seen) != 1<<3 {
		t.Errorf("only %d of 8 values reachable within two wits", len(seen))
	}
}
