// Package bitvec provides small helpers for manipulating packed bit vectors
// stored LSB-first in byte slices. It underpins the WOM-code row codecs and
// the functional PCM array, both of which address sub-byte fields (wits) at
// arbitrary bit offsets.
//
// Bit i of the vector lives in byte i/8 at bit position i%8. Multi-bit field
// accessors read and write fields of up to 64 bits spanning byte boundaries.
package bitvec

import "math/bits"

// Get reports the value of bit i in v.
func Get(v []byte, i int) bool {
	return v[i>>3]&(1<<uint(i&7)) != 0
}

// Set sets bit i of v to b.
func Set(v []byte, i int, b bool) {
	if b {
		v[i>>3] |= 1 << uint(i&7)
	} else {
		v[i>>3] &^= 1 << uint(i&7)
	}
}

// GetField extracts a width-bit field starting at bit offset off, LSB-first.
// width must be in [0, 64] and the field must lie within v.
func GetField(v []byte, off, width int) uint64 {
	var out uint64
	for i := 0; i < width; i++ {
		if Get(v, off+i) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// SetField stores the low width bits of val at bit offset off, LSB-first.
func SetField(v []byte, off, width int, val uint64) {
	for i := 0; i < width; i++ {
		Set(v, off+i, val&(1<<uint(i)) != 0)
	}
}

// New returns a zeroed bit vector with capacity for n bits.
func New(n int) []byte {
	return make([]byte, (n+7)/8)
}

// NewFilled returns a bit vector of n bits with every bit set to one.
// Trailing padding bits in the final byte are also set; callers that compare
// whole slices should mask with TrimPadding if exact n-bit equality matters.
func NewFilled(n int) []byte {
	v := New(n)
	for i := range v {
		v[i] = 0xff
	}
	TrimPadding(v, n)
	return v
}

// TrimPadding clears any bits at positions >= n in the final byte of v, so
// that two vectors representing the same n bits compare equal with
// bytes.Equal.
func TrimPadding(v []byte, n int) {
	if n&7 == 0 || len(v) == 0 {
		return
	}
	v[len(v)-1] &= byte(1<<uint(n&7)) - 1
}

// OnesCount returns the number of set bits among the first n bits of v.
func OnesCount(v []byte, n int) int {
	full := n >> 3
	count := 0
	for i := 0; i < full; i++ {
		count += bits.OnesCount8(v[i])
	}
	if rem := n & 7; rem != 0 {
		count += bits.OnesCount8(v[full] & (byte(1<<uint(rem)) - 1))
	}
	return count
}

// IsSubset reports whether every set bit of a (within the first n bits) is
// also set in b, i.e. a ⊆ b viewed as bit sets.
func IsSubset(a, b []byte, n int) bool {
	full := n >> 3
	for i := 0; i < full; i++ {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	if rem := n & 7; rem != 0 {
		mask := byte(1<<uint(rem)) - 1
		if (a[full]&^b[full])&mask != 0 {
			return false
		}
	}
	return true
}

// TransitionCounts compares the first n bits of cur and next and reports how
// many bits transition 0→1 (sets) and 1→0 (resets).
func TransitionCounts(cur, next []byte, n int) (sets, resets int) {
	for i := 0; i < n; i++ {
		c, x := Get(cur, i), Get(next, i)
		switch {
		case !c && x:
			sets++
		case c && !x:
			resets++
		}
	}
	return sets, resets
}

// Clone returns a copy of v.
func Clone(v []byte) []byte {
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// Equal reports whether the first n bits of a and b are identical.
func Equal(a, b []byte, n int) bool {
	for i := 0; i < n; i++ {
		if Get(a, i) != Get(b, i) {
			return false
		}
	}
	return true
}
