package bitvec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGetSet(t *testing.T) {
	v := New(20)
	for _, i := range []int{0, 7, 8, 13, 19} {
		Set(v, i, true)
		if !Get(v, i) {
			t.Errorf("bit %d not set", i)
		}
		Set(v, i, false)
		if Get(v, i) {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestFieldRoundTrip(t *testing.T) {
	prop := func(off8 uint8, val uint64) bool {
		off := int(off8 % 40)
		v := New(128)
		SetField(v, off, 64, val)
		return GetField(v, off, 64) == val
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldNarrow(t *testing.T) {
	v := New(16)
	SetField(v, 3, 5, 0b10110)
	if got := GetField(v, 3, 5); got != 0b10110 {
		t.Errorf("GetField = %05b", got)
	}
	// Neighbors untouched.
	if Get(v, 2) || Get(v, 8) {
		t.Error("SetField spilled outside its field")
	}
	// Overwrite with zeros clears.
	SetField(v, 3, 5, 0)
	if GetField(v, 0, 16) != 0 {
		t.Error("SetField(0) did not clear")
	}
}

func TestNewFilledAndTrim(t *testing.T) {
	v := NewFilled(11)
	if OnesCount(v, 11) != 11 {
		t.Errorf("NewFilled(11) has %d ones", OnesCount(v, 11))
	}
	if v[1]&^0b111 != 0 {
		t.Errorf("padding bits not trimmed: %08b", v[1])
	}
	w := NewFilled(16)
	if !bytes.Equal(w, []byte{0xff, 0xff}) {
		t.Errorf("NewFilled(16) = %x", w)
	}
}

func TestOnesCount(t *testing.T) {
	v := []byte{0xff, 0x0f}
	tests := []struct{ n, want int }{{0, 0}, {4, 4}, {8, 8}, {12, 12}, {16, 12}}
	for _, tt := range tests {
		if got := OnesCount(v, tt.n); got != tt.want {
			t.Errorf("OnesCount(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestIsSubset(t *testing.T) {
	a := []byte{0b0101, 0x00}
	b := []byte{0b0111, 0x80}
	if !IsSubset(a, b, 16) {
		t.Error("a ⊆ b expected")
	}
	if IsSubset(b, a, 16) {
		t.Error("b ⊄ a expected")
	}
	// Restricting the width can change the answer: only bit 0 of b is
	// inside the window, and a has it too.
	if !IsSubset(b, a, 1) {
		t.Error("first bit of b ⊆ a expected")
	}
}

func TestTransitionCounts(t *testing.T) {
	cur := []byte{0b1100}
	next := []byte{0b1010}
	sets, resets := TransitionCounts(cur, next, 4)
	if sets != 1 || resets != 1 {
		t.Errorf("TransitionCounts = (%d, %d), want (1, 1)", sets, resets)
	}
	sets, resets = TransitionCounts(cur, cur, 4)
	if sets != 0 || resets != 0 {
		t.Errorf("self transition = (%d, %d)", sets, resets)
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := []byte{1, 2, 3}
	c := Clone(v)
	if !bytes.Equal(v, c) {
		t.Error("clone differs")
	}
	c[0] = 9
	if v[0] == 9 {
		t.Error("clone aliases source")
	}
	if !Equal([]byte{0b1011}, []byte{0b0011}, 2) {
		t.Error("Equal over prefix failed")
	}
	if Equal([]byte{0b1011}, []byte{0b0011}, 4) {
		t.Error("Equal ignored differing bit")
	}
}

func TestSubsetQuickAgainstDefinition(t *testing.T) {
	prop := func(a, b uint16) bool {
		var av, bv [2]byte
		SetField(av[:], 0, 16, uint64(a))
		SetField(bv[:], 0, 16, uint64(b))
		want := a&^b == 0
		return IsSubset(av[:], bv[:], 16) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
