//go:build unix

package perfmon

import "syscall"

// processCPUNs returns the process's cumulative CPU time (user + system) in
// nanoseconds, or 0 if the platform refuses. getrusage updates continuously,
// unlike runtime/metrics' CPU classes, which only refresh at GC cycles —
// per-job CPU deltas need the live view.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
