package perfmon

import (
	"testing"
	"time"
)

func TestSpanRecordsWork(t *testing.T) {
	span := Begin()
	span.Events().Add(5000)
	// Allocate measurably and burn a little wall clock.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	time.Sleep(2 * time.Millisecond)
	rec := span.End()
	_ = sink
	if rec.WallNs < int64(2*time.Millisecond) {
		t.Errorf("WallNs = %d, want ≥ 2ms", rec.WallNs)
	}
	if rec.SimEvents != 5000 {
		t.Errorf("SimEvents = %d, want 5000", rec.SimEvents)
	}
	if rec.EventsPerSec <= 0 || rec.NsPerEvent <= 0 {
		t.Errorf("rates not derived: %+v", rec)
	}
	// The allocs counter can lag a few not-yet-flushed mcache pages, so
	// assert half the allocated volume rather than an exact floor.
	if rec.AllocBytes < 128*4096 {
		t.Errorf("AllocBytes = %d, want ≥ %d", rec.AllocBytes, 128*4096)
	}
	if rec.AllocObjects == 0 {
		t.Error("AllocObjects = 0")
	}
	if rec.CPUNs < 0 {
		t.Errorf("CPUNs = %d", rec.CPUNs)
	}
}

func TestSpanNilIsInert(t *testing.T) {
	var s *Span
	if s.Events() != nil {
		t.Error("nil span returned a live counter")
	}
	if s.LiveEvents() != 0 || s.Elapsed() != 0 {
		t.Error("nil span reported progress")
	}
	if rec := s.End(); rec != (JobRecord{}) {
		t.Errorf("nil span End = %+v, want zero", rec)
	}
}

// TestSpanDisabledAllocs pins the nil-check contract: the disabled path —
// a nil span threaded through Events/LiveEvents/End — allocates nothing.
func TestSpanDisabledAllocs(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Events()
		_ = s.LiveEvents()
		_ = s.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %v per run, want 0", allocs)
	}
}

// BenchmarkSpanDisabled is the pinned zero-cost benchmark for the disabled
// path (compare the allocs/op column: must stay 0).
func BenchmarkSpanDisabled(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Events()
		_ = s.End()
	}
}

// BenchmarkSpanEnabled measures the enabled path's fixed per-job cost.
func BenchmarkSpanEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Begin()
		s.Events().Add(1)
		_ = s.End()
	}
}

func TestRates(t *testing.T) {
	perSec, nsPer := Rates(1_000_000, time.Second)
	if perSec != 1e6 || nsPer != 1000 {
		t.Errorf("Rates = %g, %g; want 1e6, 1000", perSec, nsPer)
	}
	if perSec, nsPer := Rates(0, time.Second); perSec != 0 || nsPer != 0 {
		t.Error("zero events must yield zero rates")
	}
	if perSec, nsPer := Rates(5, 0); perSec != 0 || nsPer != 0 {
		t.Error("zero wall must yield zero rates")
	}
}

func TestSpanEventsSharedCounter(t *testing.T) {
	span := Begin()
	c := span.Events()
	c.Add(3)
	c.Add(4)
	if got := span.LiveEvents(); got != 7 {
		t.Errorf("LiveEvents = %d, want 7", got)
	}
}
