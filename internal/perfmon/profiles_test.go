package perfmon

import (
	"errors"
	"io"
	"os"
	"testing"
	"time"
)

func testStore(t *testing.T, max int) *ProfileStore {
	t.Helper()
	ps, err := NewProfileStore(t.TempDir(), max)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestProfileCaptureListOpen(t *testing.T) {
	ps := testStore(t, 0)
	caps, err := ps.Capture("job-1", "0123456789abcdef0123456789abcdef", "deadline", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 {
		t.Fatalf("captured %d profiles, want cpu+heap", len(caps))
	}
	kinds := map[string]bool{}
	for _, c := range caps {
		kinds[c.Kind] = true
		if c.JobID != "job-1" || c.Reason != "deadline" || c.File == "" {
			t.Errorf("bad capture: %+v", c)
		}
		if c.TraceID != "0123456789abcdef0123456789abcdef" {
			t.Errorf("capture lost trace id: %+v", c)
		}
		if c.Size == 0 {
			t.Errorf("%s profile is empty", c.Kind)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Errorf("kinds = %v, want cpu and heap", kinds)
	}

	if got := ps.List("job-1"); len(got) != 2 {
		t.Errorf("List(job-1) = %d captures", len(got))
	}
	if got := ps.List("other"); len(got) != 0 {
		t.Errorf("List(other) = %d captures, want 0", len(got))
	}
	if got := ps.List(""); len(got) != 2 {
		t.Errorf("List() = %d captures", len(got))
	}

	f, err := ps.Open(caps[0].File)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(f)
	f.Close()
	if err != nil || len(raw) == 0 {
		t.Errorf("profile body unreadable: %d bytes, %v", len(raw), err)
	}
}

func TestProfileOpenRejectsUnknownNames(t *testing.T) {
	ps := testStore(t, 0)
	if _, err := ps.Capture("job", "", "slow", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../profiles_test.go", "/etc/passwd", "nope.pprof", ""} {
		if _, err := ps.Open(name); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("Open(%q) = %v, want ErrNotExist", name, err)
		}
	}
}

func TestProfileEviction(t *testing.T) {
	ps := testStore(t, 2) // holds one cpu+heap pair
	first, err := ps.Capture("old", "", "slow", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Capture("new", "", "slow", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := ps.Len(); n != 2 {
		t.Errorf("store holds %d captures, want bound 2", n)
	}
	if got := ps.List("old"); len(got) != 0 {
		t.Errorf("evicted job still listed: %+v", got)
	}
	for _, c := range first {
		if _, err := ps.Open(c.File); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("evicted file %s still opens (err=%v)", c.File, err)
		}
	}
}

func TestSanitizeID(t *testing.T) {
	if got := sanitizeID("job/../../x y"); got != "job_______x_y" {
		t.Errorf("sanitizeID = %q", got)
	}
}
