package perfmon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"womcpcm/internal/core"
)

// testBenchConfig is the smallest matrix that still covers all four
// architectures.
func testBenchConfig() BenchConfig {
	return BenchConfig{Tier: TierShort, Requests: 300, Seed: 7}
}

// jsonKeyPaths walks a marshaled value and returns its sorted set of key
// paths, array indices collapsed to "#" — the schema shape, independent of
// values and entry counts.
func jsonKeyPaths(t *testing.T, v any) []string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, e := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				set[p] = true
				walk(p, e)
			}
		case []any:
			for _, e := range x {
				walk(prefix+".#", e)
			}
		}
	}
	walk("", tree)
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// TestBenchReportGoldenSchema pins the BENCH_<n>.json field set against
// testdata/bench_schema.golden: any shape change must be deliberate (update
// the golden AND bump BenchSchema).
func TestBenchReportGoldenSchema(t *testing.T) {
	rep, err := RunBench(testBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Errorf("Schema = %q, want %q", rep.Schema, BenchSchema)
	}
	got := strings.Join(jsonKeyPaths(t, rep), "\n") + "\n"
	goldenPath := filepath.Join("testdata", "bench_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Errorf("BENCH schema drifted from golden (bump BenchSchema and regenerate with UPDATE_GOLDEN=1)\ngot:\n%swant:\n%s", got, want)
	}
}

// TestBenchOrderingDeterministic pins entry order: workloads sorted by
// name, architectures in core.Arches() order, identical across runs.
func TestBenchOrderingDeterministic(t *testing.T) {
	cfg := testBenchConfig()
	cfg.Requests = 100
	labels := func(rep *BenchReport) []string {
		out := make([]string, len(rep.Entries))
		for i, e := range rep.Entries {
			out[i] = e.Workload + "/" + e.Arch
		}
		return out
	}
	a, err := RunBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := labels(a), labels(b)
	if fmt.Sprint(la) != fmt.Sprint(lb) {
		t.Errorf("entry order differs across runs:\n%v\n%v", la, lb)
	}
	arches := core.Arches()
	if len(la) != len(DefaultBenchWorkloads())*len(arches) {
		t.Fatalf("matrix has %d entries, want %d", len(la), len(DefaultBenchWorkloads())*len(arches))
	}
	wls := append([]string(nil), DefaultBenchWorkloads()...)
	sort.Strings(wls)
	for i, label := range la {
		want := wls[i/len(arches)] + "/" + arches[i%len(arches)].String()
		if label != want {
			t.Errorf("entry %d = %s, want %s", i, label, want)
		}
	}
	// All four architectures appear.
	seen := map[string]bool{}
	for _, e := range a.Entries {
		seen[e.Arch] = true
	}
	for _, arch := range arches {
		if !seen[arch.String()] {
			t.Errorf("architecture %s missing from matrix", arch)
		}
	}
}

// TestCompareBenchInjectedRegression injects a 10× wall-time regression
// into one cell and asserts the comparison flags it beyond a 50% band.
func TestCompareBenchInjectedRegression(t *testing.T) {
	base, err := RunBench(testBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	current := *base
	current.Entries = append([]BenchEntry(nil), base.Entries...)
	current.Entries[0].WallNs *= 10
	current.Entries[0].EventsPerSec /= 10

	cmp, err := CompareBench(base, &current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) == 0 {
		t.Fatal("injected regression not detected")
	}
	key := base.Entries[0].Workload + "/" + base.Entries[0].Arch
	found := false
	for _, d := range cmp.Regressions {
		if d.Key == key && (d.Metric == "wall_ns" || d.Metric == "events_per_sec") {
			found = true
		}
		if !hostTimePaths[d.Metric] {
			t.Errorf("sim-side metric %s compared as host-time", d.Metric)
		}
	}
	if !found {
		t.Errorf("regression on %s not attributed: %+v", key, cmp.Regressions)
	}

	// The same report diffed against itself is clean at any tolerance.
	clean, err := CompareBench(base, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Regressions) != 0 || len(clean.MissingKeys) != 0 || len(clean.NewKeys) != 0 {
		t.Errorf("self-comparison not clean: %+v", clean)
	}
}

func TestCompareBenchSchemaMismatch(t *testing.T) {
	a := &BenchReport{Schema: BenchSchema, Tier: TierShort}
	b := &BenchReport{Schema: "womcpcm-bench-v999", Tier: TierShort}
	if _, err := CompareBench(a, b, 0.5); err == nil {
		t.Error("schema mismatch not rejected")
	}
	c := &BenchReport{Schema: BenchSchema, Tier: TierFull}
	if _, err := CompareBench(a, c, 0.5); err == nil {
		t.Error("tier mismatch not rejected")
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep, err := RunBench(BenchConfig{Requests: 100, Workloads: []string{"qsort"}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_1.json" {
		t.Errorf("first path = %s, want BENCH_1.json", path)
	}
	if err := WriteBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	next, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(next) != "BENCH_2.json" {
		t.Errorf("second path = %s, want BENCH_2.json", next)
	}
	back, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Entries) != len(rep.Entries) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestBenchConfigValidation(t *testing.T) {
	if _, err := RunBench(BenchConfig{Tier: "medium"}); err == nil {
		t.Error("unknown tier accepted")
	}
	if _, err := RunBench(BenchConfig{Requests: 10, Workloads: []string{"no-such-workload"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}
