package perfmon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sim"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// BenchSchema versions the BENCH_<n>.json shape. Bump it whenever entry
// fields change — `womtool bench -compare` refuses to diff across schemas.
const BenchSchema = "womcpcm-bench-v1"

// Bench tiers and their per-configuration request budgets.
const (
	TierShort        = "short"
	TierFull         = "full"
	ShortRequests    = 20000
	FullRequests     = 200000
	defaultBenchSeed = 1
)

// DefaultBenchWorkloads is the fixed representative matrix: one write-heavy
// SPEC benchmark, a balanced and a read-heavy MiBench workload, and a
// SPLASH-2 scientific kernel — small enough to run in CI, diverse enough
// that a throughput regression in any write class shows up.
func DefaultBenchWorkloads() []string {
	return []string{"464.h264ref", "ocean", "qsort", "stringsearch"}
}

// BenchConfig parameterizes RunBench. The zero value selects the short tier
// over the default matrix.
type BenchConfig struct {
	// Tier is TierShort (default) or TierFull.
	Tier string
	// Requests overrides the tier's per-configuration request budget.
	Requests int
	// Seed makes the trace streams reproducible (default 1).
	Seed int64
	// Workloads overrides DefaultBenchWorkloads (names from
	// internal/workload).
	Workloads []string
}

func (c BenchConfig) normalize() (BenchConfig, error) {
	switch c.Tier {
	case "":
		c.Tier = TierShort
	case TierShort, TierFull:
	default:
		return c, fmt.Errorf("perfmon: unknown bench tier %q (want %s or %s)", c.Tier, TierShort, TierFull)
	}
	if c.Requests <= 0 {
		if c.Tier == TierFull {
			c.Requests = FullRequests
		} else {
			c.Requests = ShortRequests
		}
	}
	if c.Seed == 0 {
		c.Seed = defaultBenchSeed
	}
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultBenchWorkloads()
	}
	return c, nil
}

// BenchEntry is one (workload, architecture) cell of the matrix: host-time
// throughput plus the sim-side IPC-proxy metrics that contextualize it.
// No field is omitempty — the flattened metric shape must be identical
// across entries and runs, or -compare would report shape drift.
type BenchEntry struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Requests int    `json:"requests"`

	// Host-time metrics.
	WallNs         int64   `json:"wall_ns"`
	SimEvents      int64   `json:"sim_events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	CPUNs          int64   `json:"cpu_ns"`

	// Sim-side IPC-proxy metrics: how much simulated work the trace
	// represents and how the architecture served it.
	SimulatedNs   int64   `json:"simulated_ns"`
	ReqPerSimMs   float64 `json:"req_per_sim_ms"`
	MeanReadNs    float64 `json:"mean_read_ns"`
	MeanWriteNs   float64 `json:"mean_write_ns"`
	AlphaFraction float64 `json:"alpha_fraction"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// BenchReport is the BENCH_<n>.json document.
type BenchReport struct {
	Schema     string       `json:"schema"`
	Tier       string       `json:"tier"`
	Requests   int          `json:"requests"`
	Seed       int64        `json:"seed"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	CreatedAt  time.Time    `json:"created_at"`
	Entries    []BenchEntry `json:"entries"`
}

// RunBench executes the matrix serially — parallel cells would contend for
// cores and pollute each other's throughput numbers — in deterministic
// order: workloads sorted by name, architectures in core.Arches() order.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), cfg.Workloads...)
	sort.Strings(names)
	profiles := make([]workload.Profile, len(names))
	for i, name := range names {
		p, err := workload.ProfileByName(name)
		if err != nil {
			return nil, fmt.Errorf("perfmon: bench workload: %w", err)
		}
		profiles[i] = p
	}
	g := pcm.DefaultGeometry()
	rep := &BenchReport{
		Schema:     BenchSchema,
		Tier:       cfg.Tier,
		Requests:   cfg.Requests,
		Seed:       cfg.Seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC(),
	}
	for _, p := range profiles {
		for _, arch := range core.Arches() {
			entry, err := benchCell(arch, p, g, cfg)
			if err != nil {
				return nil, err
			}
			rep.Entries = append(rep.Entries, entry)
		}
	}
	return rep, nil
}

// benchCell runs one (workload, architecture) configuration under a Span.
func benchCell(arch core.Arch, p workload.Profile, g pcm.Geometry, cfg BenchConfig) (BenchEntry, error) {
	gen, err := workload.NewGenerator(p, g, cfg.Seed)
	if err != nil {
		return BenchEntry{}, err
	}
	span := Begin()
	opts := core.DefaultOptions()
	opts.Geometry = g
	opts.Events = span.Events()
	sys, err := core.NewSystem(arch, opts)
	if err != nil {
		return BenchEntry{}, err
	}
	run, err := sys.Simulate(trace.NewLimit(gen, cfg.Requests))
	if err != nil {
		return BenchEntry{}, fmt.Errorf("perfmon: bench %s on %s: %w", arch, p.Name, err)
	}
	rec := span.End()
	e := BenchEntry{
		Workload:      p.Name,
		Arch:          arch.String(),
		Requests:      cfg.Requests,
		WallNs:        rec.WallNs,
		SimEvents:     rec.SimEvents,
		EventsPerSec:  rec.EventsPerSec,
		NsPerEvent:    rec.NsPerEvent,
		AllocBytes:    rec.AllocBytes,
		CPUNs:         rec.CPUNs,
		SimulatedNs:   run.SimulatedNs,
		MeanReadNs:    run.ReadLatency.Mean(),
		MeanWriteNs:   run.WriteLatency.Mean(),
		AlphaFraction: run.AlphaFraction(),
		CacheHitRate:  run.CacheHitRate(),
	}
	if rec.SimEvents > 0 {
		e.AllocsPerEvent = float64(rec.AllocObjects) / float64(rec.SimEvents)
	}
	if run.SimulatedNs > 0 {
		e.ReqPerSimMs = float64(cfg.Requests) / (float64(run.SimulatedNs) / 1e6)
	}
	return e, nil
}

// hostTimePaths are the flattened BenchEntry fields that measure the host,
// not the simulation. Only these are compared — the sim-side fields are
// deterministic replays already covered by the resultstore regress flow,
// and including them would make every intentional simulator change a bench
// "regression" too.
var hostTimePaths = map[string]bool{
	"wall_ns":          true,
	"events_per_sec":   true,
	"ns_per_event":     true,
	"alloc_bytes":      true,
	"allocs_per_event": true,
}

// CompareBench diffs current against a pinned baseline report through the
// resultstore regression machinery: each (workload, arch) cell is an entry
// keyed "workload/arch", host-time metrics must agree within the relative
// tolerance, and a cell or metric that appears or vanishes is shape drift.
// Sim-side metrics ride along in the report but are excluded from the
// comparison (see hostTimePaths).
func CompareBench(baseline, current *BenchReport, tol float64) (*resultstore.Comparison, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("perfmon: bench schema mismatch: baseline %q vs current %q", baseline.Schema, current.Schema)
	}
	if baseline.Tier != current.Tier {
		return nil, fmt.Errorf("perfmon: bench tier mismatch: baseline %q vs current %q", baseline.Tier, current.Tier)
	}
	base := &resultstore.Baseline{
		Name:        "bench",
		Schema:      baseline.Schema,
		CreatedAt:   baseline.CreatedAt,
		Metrics:     make(map[string]map[string]float64, len(baseline.Entries)),
		Experiments: make(map[string]string, len(baseline.Entries)),
	}
	for _, e := range baseline.Entries {
		m, err := benchEntryMetrics(e)
		if err != nil {
			return nil, err
		}
		key := e.Workload + "/" + e.Arch
		base.Metrics[key] = m
		base.Experiments[key] = "bench"
	}
	entries := make([]*resultstore.Entry, 0, len(current.Entries))
	for _, e := range current.Entries {
		m, err := benchEntryMetrics(e)
		if err != nil {
			return nil, err
		}
		entries = append(entries, &resultstore.Entry{
			Key:        e.Workload + "/" + e.Arch,
			Experiment: "bench",
			Schema:     current.Schema,
			Result:     &sim.Result{Experiment: "bench", Data: m},
		})
	}
	return resultstore.Compare(base, entries, tol)
}

// benchEntryMetrics flattens one entry to its host-time numeric leaves.
func benchEntryMetrics(e BenchEntry) (map[string]float64, error) {
	raw, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("perfmon: flattening bench entry: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("perfmon: flattening bench entry: %w", err)
	}
	all := resultstore.Flatten(v)
	out := make(map[string]float64, len(hostTimePaths))
	for path, val := range all {
		if hostTimePaths[path] {
			out[path] = val
		}
	}
	return out, nil
}

// WriteBenchReport writes the report as pretty JSON.
func WriteBenchReport(path string, rep *BenchReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("perfmon: encoding bench report: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadBenchReport loads a BENCH_<n>.json and validates its schema tag.
func ReadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfmon: reading bench report: %w", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("perfmon: parsing %s: %w", path, err)
	}
	if rep.Schema == "" {
		return nil, fmt.Errorf("perfmon: %s carries no schema tag", path)
	}
	return &rep, nil
}

// NextBenchPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 not
// already present — the append-only BENCH trajectory.
func NextBenchPath(dir string) (string, error) {
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", fmt.Errorf("perfmon: probing %s: %w", path, err)
		}
	}
}
