package perfmon

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// pollerSampleNames are the runtime/metrics series the poller samples each
// interval, in the fixed order the index constants below assume.
var pollerSampleNames = [...]string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
	"/memory/classes/total:bytes",
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/cpu/classes/gc/mark/assist:cpu-seconds",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

const (
	pollHeapObjects = iota
	pollHeapUnused
	pollTotalBytes
	pollGoroutines
	pollGomaxprocs
	pollGCCycles
	pollAllocBytes
	pollGCAssist
	pollGCPauses
	pollSchedLatencies
)

// Quantiles summarizes a runtime histogram: upper bounds for the 50th, 90th
// and 99th percentiles plus the sample count. The runtime accumulates these
// histograms over the process lifetime, so the quantiles are
// since-process-start, not per-interval — stable summaries rather than
// noisy windows.
type Quantiles struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
}

// RuntimeSnapshot is one poll of the Go runtime, the data behind the
// womd_runtime_* families.
type RuntimeSnapshot struct {
	// HeapInUseBytes is live heap memory: objects plus unused spans.
	HeapInUseBytes uint64 `json:"heap_inuse_bytes"`
	// TotalBytes is everything the runtime has mapped from the OS.
	TotalBytes uint64 `json:"memory_total_bytes"`
	// Goroutines and GoMaxProcs gauge scheduler pressure.
	Goroutines uint64 `json:"goroutines"`
	GoMaxProcs uint64 `json:"gomaxprocs"`
	// GCCycles, AllocBytes and GCAssistSeconds are lifetime counters.
	GCCycles        uint64  `json:"gc_cycles_total"`
	AllocBytes      uint64  `json:"alloc_bytes_total"`
	GCAssistSeconds float64 `json:"gc_assist_seconds_total"`
	// GCPause and SchedLatency summarize the runtime's stop-the-world pause
	// and goroutine scheduling latency histograms.
	GCPause      Quantiles `json:"gc_pause_seconds"`
	SchedLatency Quantiles `json:"sched_latency_seconds"`
	// At is when the snapshot was taken.
	At time.Time `json:"at"`
}

// DefaultPollInterval spaces runtime polls; one metrics.Read per interval
// costs microseconds, so the default favors freshness.
const DefaultPollInterval = 5 * time.Second

// Poller periodically samples the Go runtime and serves the latest snapshot
// to /metrics scrapes without making scrapes pay for a metrics.Read.
// Start launches the goroutine (after one synchronous poll, so a snapshot
// always exists); Stop terminates it. Both are idempotent.
type Poller struct {
	interval time.Duration
	snap     atomic.Pointer[RuntimeSnapshot]

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	samples []metrics.Sample
}

// NewPoller builds a poller; interval ≤ 0 selects DefaultPollInterval.
func NewPoller(interval time.Duration) *Poller {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	p := &Poller{interval: interval, samples: make([]metrics.Sample, len(pollerSampleNames))}
	for i, name := range pollerSampleNames {
		p.samples[i].Name = name
	}
	return p
}

// Start polls once synchronously and then keeps polling on the interval.
func (p *Poller) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.poll()
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.run(p.stop, p.done)
}

// Stop terminates the polling goroutine and waits for it to exit.
func (p *Poller) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Poller) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.mu.Lock()
			p.poll()
			p.mu.Unlock()
		}
	}
}

// poll samples the runtime and publishes a fresh snapshot. Callers hold mu
// (the sample slice is reused between polls).
func (p *Poller) poll() {
	metrics.Read(p.samples)
	s := &RuntimeSnapshot{
		HeapInUseBytes:  p.samples[pollHeapObjects].Value.Uint64() + p.samples[pollHeapUnused].Value.Uint64(),
		TotalBytes:      p.samples[pollTotalBytes].Value.Uint64(),
		Goroutines:      p.samples[pollGoroutines].Value.Uint64(),
		GoMaxProcs:      p.samples[pollGomaxprocs].Value.Uint64(),
		GCCycles:        p.samples[pollGCCycles].Value.Uint64(),
		AllocBytes:      p.samples[pollAllocBytes].Value.Uint64(),
		GCAssistSeconds: p.samples[pollGCAssist].Value.Float64(),
		GCPause:         histQuantiles(p.samples[pollGCPauses].Value.Float64Histogram()),
		SchedLatency:    histQuantiles(p.samples[pollSchedLatencies].Value.Float64Histogram()),
		At:              time.Now(),
	}
	p.snap.Store(s)
}

// Snapshot returns the latest poll, or nil before the first Start.
func (p *Poller) Snapshot() *RuntimeSnapshot { return p.snap.Load() }

// histQuantiles summarizes a runtime Float64Histogram. Bucket i counts
// observations in [Buckets[i], Buckets[i+1}); a quantile reports the upper
// bound of the bucket where the cumulative count crosses it.
func histQuantiles(h *metrics.Float64Histogram) Quantiles {
	if h == nil {
		return Quantiles{}
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	q := Quantiles{Count: total}
	if total == 0 {
		return q
	}
	quantile := func(f float64) float64 {
		target := uint64(f * float64(total))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= target {
				upper := h.Buckets[i+1]
				// The final bucket's upper bound may be +Inf; report its
				// finite lower bound instead of an unplottable infinity.
				if math.IsInf(upper, 1) {
					return h.Buckets[i]
				}
				return upper
			}
		}
		return h.Buckets[len(h.Buckets)-1]
	}
	q.P50, q.P90, q.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return q
}

// RuntimeMetricNames lists every womd_runtime_* family WriteProm emits — the
// poller exposition test asserts each appears in /metrics.
func RuntimeMetricNames() []string {
	return []string{
		"womd_runtime_heap_inuse_bytes",
		"womd_runtime_memory_total_bytes",
		"womd_runtime_goroutines",
		"womd_runtime_gomaxprocs",
		"womd_runtime_gc_cycles_total",
		"womd_runtime_alloc_bytes_total",
		"womd_runtime_gc_assist_seconds_total",
		"womd_runtime_gc_pause_seconds",
		"womd_runtime_sched_latency_seconds",
	}
}

// WriteProm renders the latest snapshot as womd_runtime_* families in the
// Prometheus text exposition format; it writes nothing before the first
// poll, keeping the TYPE-implies-samples contract.
func (p *Poller) WriteProm(w io.Writer) {
	s := p.Snapshot()
	if s == nil {
		return
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	summary := func(name, help string, q Quantiles) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, q.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %g\n", name, q.P90)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, q.P99)
		fmt.Fprintf(w, "%s_count %d\n", name, q.Count)
	}
	gauge("womd_runtime_heap_inuse_bytes", "Live heap memory (objects + unused spans).", float64(s.HeapInUseBytes))
	gauge("womd_runtime_memory_total_bytes", "All memory mapped by the Go runtime.", float64(s.TotalBytes))
	gauge("womd_runtime_goroutines", "Live goroutines.", float64(s.Goroutines))
	gauge("womd_runtime_gomaxprocs", "GOMAXPROCS.", float64(s.GoMaxProcs))
	counter("womd_runtime_gc_cycles_total", "Completed GC cycles.", float64(s.GCCycles))
	counter("womd_runtime_alloc_bytes_total", "Cumulative heap bytes allocated.", float64(s.AllocBytes))
	counter("womd_runtime_gc_assist_seconds_total", "CPU seconds goroutines spent assisting the GC.", s.GCAssistSeconds)
	summary("womd_runtime_gc_pause_seconds", "GC stop-the-world pause quantiles (process lifetime).", s.GCPause)
	summary("womd_runtime_sched_latency_seconds", "Goroutine scheduling latency quantiles (process lifetime).", s.SchedLatency)
}
