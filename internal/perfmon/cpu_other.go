//go:build !unix

package perfmon

// processCPUNs has no portable implementation off unix; records carry
// CPUNs = 0 there and every consumer treats 0 as "unavailable".
func processCPUNs() int64 { return 0 }
