package perfmon

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxCaptures bounds the on-disk profile store: beyond it the oldest
// capture pair is evicted, so a pathological fleet cannot fill the disk.
const DefaultMaxCaptures = 32

// DefaultCPUProfileDuration is how long a slow-job CPU capture samples.
const DefaultCPUProfileDuration = 500 * time.Millisecond

// Capture describes one stored profile file.
type Capture struct {
	// JobID is the job the capture was taken for.
	JobID string `json:"job_id"`
	// TraceID is the job's distributed-trace id (internal/span), so a
	// profile can be joined back to its trace; empty when tracing is off.
	TraceID string `json:"trace_id,omitempty"`
	// Reason says why ("slow: 0.12x of fleet median", "deadline").
	Reason string `json:"reason"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// File is the file name inside the store directory; fetch it via
	// GET /v1/jobs/{id}/profiles/{file}.
	File string `json:"file"`
	// Size is the file size in bytes.
	Size int64 `json:"size"`
	// CreatedAt is the capture time.
	CreatedAt time.Time `json:"created_at"`
}

// ProfileStore captures pprof profiles for slow jobs into a bounded
// directory. Captures serialize on one mutex — CPU profiling is a global
// runtime facility, so concurrent captures are impossible anyway — and the
// store evicts oldest-first past its bound.
type ProfileStore struct {
	dir string
	max int

	mu       sync.Mutex
	captures []Capture // oldest first
	seq      int
	busy     bool
}

// NewProfileStore opens (creating if needed) a profile directory.
// maxCaptures ≤ 0 selects DefaultMaxCaptures.
func NewProfileStore(dir string, maxCaptures int) (*ProfileStore, error) {
	if maxCaptures <= 0 {
		maxCaptures = DefaultMaxCaptures
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("perfmon: profile store: %w", err)
	}
	return &ProfileStore{dir: dir, max: maxCaptures}, nil
}

// Dir returns the store directory.
func (ps *ProfileStore) Dir() string { return ps.dir }

// Capture records a CPU profile (sampling for cpuDur, ≤ 0 selecting the
// default) and a heap profile for jobID, returning the stored captures.
// traceID, when non-empty, stamps the captures with the job's trace so
// they join back to its distributed trace. If another capture is in
// flight the call returns ErrBusy without blocking the caller for the
// sampling duration.
func (ps *ProfileStore) Capture(jobID, traceID, reason string, cpuDur time.Duration) ([]Capture, error) {
	if cpuDur <= 0 {
		cpuDur = DefaultCPUProfileDuration
	}
	ps.mu.Lock()
	if ps.busy {
		ps.mu.Unlock()
		return nil, ErrBusy
	}
	ps.busy = true
	ps.seq++
	seq := ps.seq
	ps.mu.Unlock()
	defer func() {
		ps.mu.Lock()
		ps.busy = false
		ps.mu.Unlock()
	}()

	var out []Capture
	cpuFile := fmt.Sprintf("%s-%d-cpu.pprof", sanitizeID(jobID), seq)
	if c, err := ps.captureCPU(jobID, traceID, reason, cpuFile, cpuDur); err == nil {
		out = append(out, c)
	} else {
		return nil, err
	}
	heapFile := fmt.Sprintf("%s-%d-heap.pprof", sanitizeID(jobID), seq)
	if c, err := ps.captureHeap(jobID, traceID, reason, heapFile); err == nil {
		out = append(out, c)
	} else {
		return out, err
	}
	return out, nil
}

// ErrBusy reports a capture attempt while another is sampling.
var ErrBusy = fmt.Errorf("perfmon: a profile capture is already in flight")

func (ps *ProfileStore) captureCPU(jobID, traceID, reason, name string, dur time.Duration) (Capture, error) {
	f, err := os.Create(filepath.Join(ps.dir, name))
	if err != nil {
		return Capture{}, fmt.Errorf("perfmon: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return Capture{}, fmt.Errorf("perfmon: cpu profile: %w", err)
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()
	return ps.finish(f, jobID, traceID, reason, "cpu", name)
}

func (ps *ProfileStore) captureHeap(jobID, traceID, reason, name string) (Capture, error) {
	f, err := os.Create(filepath.Join(ps.dir, name))
	if err != nil {
		return Capture{}, fmt.Errorf("perfmon: heap profile: %w", err)
	}
	// An up-to-date heap profile needs a completed GC cycle behind it.
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return Capture{}, fmt.Errorf("perfmon: heap profile: %w", err)
	}
	return ps.finish(f, jobID, traceID, reason, "heap", name)
}

// finish closes the profile file, registers the capture, and evicts past
// the bound.
func (ps *ProfileStore) finish(f *os.File, jobID, traceID, reason, kind, name string) (Capture, error) {
	info, statErr := f.Stat()
	if err := f.Close(); err != nil {
		return Capture{}, fmt.Errorf("perfmon: %s profile: %w", kind, err)
	}
	var size int64
	if statErr == nil {
		size = info.Size()
	}
	c := Capture{JobID: jobID, TraceID: traceID, Reason: reason, Kind: kind, File: name, Size: size, CreatedAt: time.Now()}
	ps.mu.Lock()
	ps.captures = append(ps.captures, c)
	var evict []string
	for len(ps.captures) > ps.max {
		evict = append(evict, ps.captures[0].File)
		ps.captures = ps.captures[1:]
	}
	ps.mu.Unlock()
	for _, old := range evict {
		os.Remove(filepath.Join(ps.dir, old))
	}
	return c, nil
}

// List returns captures for one job (or all jobs when jobID is empty),
// oldest first.
func (ps *ProfileStore) List(jobID string) []Capture {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]Capture, 0, len(ps.captures))
	for _, c := range ps.captures {
		if jobID == "" || c.JobID == jobID {
			out = append(out, c)
		}
	}
	return out
}

// Len returns how many captures the store currently holds.
func (ps *ProfileStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.captures)
}

// Open serves a stored profile by file name. Only names the store itself
// registered resolve — path traversal cannot reach outside the directory.
func (ps *ProfileStore) Open(name string) (*os.File, error) {
	ps.mu.Lock()
	found := false
	for _, c := range ps.captures {
		if c.File == name {
			found = true
			break
		}
	}
	ps.mu.Unlock()
	if !found {
		return nil, os.ErrNotExist
	}
	return os.Open(filepath.Join(ps.dir, name))
}

// sanitizeID makes a job id safe as a file-name fragment.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// SortCapturesByTime orders captures newest first, for API listings.
func SortCapturesByTime(cs []Capture) {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].CreatedAt.After(cs[j].CreatedAt) })
}
