package perfmon

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestPollerSnapshot(t *testing.T) {
	p := NewPoller(time.Hour) // interval irrelevant: Start polls once synchronously
	if p.Snapshot() != nil {
		t.Fatal("snapshot before Start")
	}
	p.Start()
	defer p.Stop()
	s := p.Snapshot()
	if s == nil {
		t.Fatal("no snapshot after Start")
	}
	if s.HeapInUseBytes == 0 || s.TotalBytes == 0 {
		t.Errorf("memory gauges empty: %+v", s)
	}
	if s.Goroutines == 0 {
		t.Error("goroutine gauge empty")
	}
	if int(s.GoMaxProcs) != runtime.GOMAXPROCS(0) {
		t.Errorf("GoMaxProcs = %d, want %d", s.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if s.At.IsZero() {
		t.Error("snapshot timestamp unset")
	}
}

func TestPollerStartStopIdempotent(t *testing.T) {
	p := NewPoller(time.Millisecond)
	p.Start()
	p.Start()
	p.Stop()
	p.Stop()
	p.Start()
	p.Stop()
}

func TestPollerWritePromCoversAllFamilies(t *testing.T) {
	p := NewPoller(time.Hour)

	var empty strings.Builder
	p.WriteProm(&empty)
	if empty.Len() != 0 {
		t.Errorf("WriteProm before first poll wrote %q — TYPE lines without samples", empty.String())
	}

	p.Start()
	defer p.Stop()
	var b strings.Builder
	p.WriteProm(&b)
	body := b.String()
	for _, name := range RuntimeMetricNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("family %s missing from exposition", name)
		}
		if !strings.Contains(body, "\n"+name) && !strings.HasPrefix(body, name) {
			t.Errorf("family %s has no samples", name)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	if q := histQuantiles(nil); q != (Quantiles{}) {
		t.Errorf("nil histogram → %+v", q)
	}
}
