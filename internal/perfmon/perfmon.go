// Package perfmon is the host-time performance observability layer of the
// reproduction: where internal/probe and internal/telemetry measure
// *simulated* nanoseconds, perfmon measures what the simulator costs the
// machine it runs on — wall-clock per job, simulated-events per host second,
// bytes allocated, GC assist time — the figures behind the ROADMAP's "as
// fast as the hardware allows" goal.
//
// Three layers:
//
//	Span / JobRecord    per-job accounting via runtime/metrics deltas
//	Poller              womd_runtime_* gauges for /metrics
//	RunBench            the standardized BENCH_<n>.json suite (womtool bench)
//
// The disabled path follows the probe's contract: a nil *Span is inert —
// every method is a nil check — and attaching a live event counter to a
// simulation changes no allocation counts (pinned by
// BenchmarkSpanDisabled and memctrl's TestEventCountDisabledAllocs).
package perfmon

import (
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// spanSampleNames are the runtime/metrics counters a Span deltas around a
// job. All three are cumulative process-wide counters, so under concurrent
// jobs a record attributes shared process activity to whichever spans cover
// it — per-job numbers are attribution, not isolation; the same caveat as
// every process-scoped profiler.
var spanSampleNames = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/cpu/classes/gc/mark/assist:cpu-seconds",
}

const (
	sampleAllocBytes = iota
	sampleAllocObjects
	sampleGCAssist
)

// JobRecord is one job's host-time performance accounting, attached to job
// results (JobView.Perf) and serialized into BENCH entries.
type JobRecord struct {
	// WallNs is the job's wall-clock duration.
	WallNs int64 `json:"wall_ns"`
	// SimEvents counts simulator event-loop steps the job executed (see
	// stats.Run.Events); 0 when the job ran no simulations.
	SimEvents int64 `json:"sim_events"`
	// EventsPerSec is SimEvents per wall-clock second — the throughput
	// figure the slow-job detector and the bench suite track.
	EventsPerSec float64 `json:"events_per_sec"`
	// NsPerEvent is the inverse: host nanoseconds per simulated event.
	NsPerEvent float64 `json:"ns_per_event"`
	// AllocBytes and AllocObjects are heap allocation deltas over the span
	// (process-wide; see the attribution caveat above).
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// GCAssistNs is CPU time goroutines spent assisting the garbage
	// collector during the span — allocation pressure made visible.
	GCAssistNs int64 `json:"gc_assist_ns"`
	// CPUNs is the process CPU time (user+system) consumed during the span.
	CPUNs int64 `json:"cpu_ns"`
}

// Span measures one job. Begin samples the runtime counters; End samples
// them again and returns the deltas. A nil Span is the disabled path: End
// returns a zero record, Events returns nil, and nothing allocates.
type Span struct {
	start   time.Time
	cpu     int64
	events  atomic.Int64
	samples [len(spanSampleNames)]metrics.Sample
}

// Begin starts a span. The returned span's Events counter can be attached
// to simulations (sim.WithSimEvents) so the span observes live progress.
func Begin() *Span {
	s := &Span{}
	for i, name := range spanSampleNames {
		s.samples[i].Name = name
	}
	metrics.Read(s.samples[:])
	s.cpu = processCPUNs()
	s.start = time.Now()
	return s
}

// Events returns the span's live simulated-event counter, nil on a nil
// span — callers pass it straight to sim.WithSimEvents, whose nil check
// keeps the disabled path free.
func (s *Span) Events() *atomic.Int64 {
	if s == nil {
		return nil
	}
	return &s.events
}

// LiveEvents returns the events counted so far; 0 on a nil span.
func (s *Span) LiveEvents() int64 {
	if s == nil {
		return 0
	}
	return s.events.Load()
}

// Elapsed returns the wall time since Begin; 0 on a nil span.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span and returns the job's record. Safe to call on a nil
// span (returns the zero record).
func (s *Span) End() JobRecord {
	if s == nil {
		return JobRecord{}
	}
	wall := time.Since(s.start)
	cpu := processCPUNs()
	var after [len(spanSampleNames)]metrics.Sample
	for i, name := range spanSampleNames {
		after[i].Name = name
	}
	metrics.Read(after[:])
	rec := JobRecord{
		WallNs:       wall.Nanoseconds(),
		SimEvents:    s.events.Load(),
		AllocBytes:   counterDelta(after[sampleAllocBytes], s.samples[sampleAllocBytes]),
		AllocObjects: counterDelta(after[sampleAllocObjects], s.samples[sampleAllocObjects]),
		GCAssistNs:   int64(1e9 * (after[sampleGCAssist].Value.Float64() - s.samples[sampleGCAssist].Value.Float64())),
	}
	if cpu > 0 && s.cpu > 0 && cpu >= s.cpu {
		rec.CPUNs = cpu - s.cpu
	}
	rec.EventsPerSec, rec.NsPerEvent = Rates(rec.SimEvents, wall)
	return rec
}

// Rates derives (events/sec, ns/event) from an event count and a wall
// duration, 0 when either side is empty.
func Rates(events int64, wall time.Duration) (perSec, nsPer float64) {
	if events <= 0 || wall <= 0 {
		return 0, 0
	}
	return float64(events) / wall.Seconds(), float64(wall.Nanoseconds()) / float64(events)
}

// counterDelta subtracts two uint64 runtime/metrics samples, clamping at 0.
func counterDelta(after, before metrics.Sample) uint64 {
	a, b := after.Value.Uint64(), before.Value.Uint64()
	if a < b {
		return 0
	}
	return a - b
}
