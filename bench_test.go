// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one testing.B benchmark per artifact, plus the ablations DESIGN.md
// calls out. Each benchmark reports the reproduced headline numbers as
// custom metrics (ns/op is not the interesting output here), so
//
//	go test -bench=. -benchmem
//
// prints the full paper-versus-measured summary. EXPERIMENTS.md records a
// reference run.
package womcpcm_test

import (
	"context"
	"errors"
	"testing"

	"womcpcm/internal/core"
	"womcpcm/internal/engine"
	"womcpcm/internal/pcm"
	"womcpcm/internal/sim"
	"womcpcm/internal/womcode"
)

// benchConfig bounds the per-iteration cost: the paper's geometry with a
// reduced request budget. 120k requests per benchmark keeps cold-start
// α-writes from skewing the refresh numbers while finishing a Fig. 5
// iteration in a few seconds; EXPERIMENTS.md records full 200k runs.
func benchConfig() sim.ExpConfig {
	return sim.ExpConfig{Requests: 120000}
}

// BenchmarkTable1RowCodec measures the paper's Table 1 code applied at row
// granularity — encode one full 16 KB row write through the inverted
// <2^2>^2/3 codec (the operation a wide-column WOM-code PCM performs on
// every write).
func BenchmarkTable1RowCodec(b *testing.B) {
	g := pcm.DefaultGeometry()
	rc, err := womcode.NewRowCodec(womcode.InvRS223(), g.RowBits())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, rc.DataBytes())
	for i := range data {
		data[i] = byte(i * 31)
	}
	row := rc.InitialRow()
	b.SetBytes(int64(rc.DataBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := rc.Encode(row, data, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rc.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aWriteLatency regenerates Fig. 5(a): normalized average
// write latency of the four architectures across all 20 benchmarks.
// Reported metrics are the paper-style percentage reductions versus
// conventional PCM (paper: WOM 20.1 %, refresh 54.9 %, WCPCM 47.2 %).
func BenchmarkFig5aWriteLatency(b *testing.B) {
	var res *sim.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WriteReduction(core.WOMCode), "womWr%")
	b.ReportMetric(res.WriteReduction(core.Refresh), "refreshWr%")
	b.ReportMetric(res.WriteReduction(core.WCPCM), "wcpcmWr%")
}

// BenchmarkFig5bReadLatency regenerates Fig. 5(b): normalized average read
// latency (paper: WOM 10.2 %, refresh 47.9 %, WCPCM 44.0 %).
func BenchmarkFig5bReadLatency(b *testing.B) {
	var res *sim.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ReadReduction(core.WOMCode), "womRd%")
	b.ReportMetric(res.ReadReduction(core.Refresh), "refreshRd%")
	b.ReportMetric(res.ReadReduction(core.WCPCM), "wcpcmRd%")
}

// BenchmarkFig6HitRate regenerates Fig. 6: the WOM-cache hit rate per
// banks/rank organization (paper trend: falls as banks/rank grows).
func BenchmarkFig6HitRate(b *testing.B) {
	var res *sim.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Fig6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, banks := range res.BanksPerRank {
		b.ReportMetric(100*res.Mean[i], "hit%@"+itoa(banks))
	}
}

// BenchmarkFig7BankSweep regenerates Fig. 7: WCPCM write latency per
// banks/rank, normalized to the 4-banks/rank organization.
func BenchmarkFig7BankSweep(b *testing.B) {
	var res *sim.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, banks := range res.BanksPerRank {
		b.ReportMetric(res.Mean[i], "norm@"+itoa(banks))
	}
}

// BenchmarkBoundAblation sweeps the WOM rewrite budget k and reports the
// measured normalized write latency beside the §3.2 analytic bound
// (k−1+S)/(kS).
func BenchmarkBoundAblation(b *testing.B) {
	ks := []int{1, 2, 4, 8}
	var res *sim.CodeAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.CodeAblation(benchConfig(), ks)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, k := range ks {
		b.ReportMetric(res.NormWrite[i], "meas@k"+itoa(k))
		b.ReportMetric(res.Bound[i], "bound@k"+itoa(k))
	}
}

// BenchmarkOrgAblation compares the §3.1 wide-column and hidden-page
// organizations.
func BenchmarkOrgAblation(b *testing.B) {
	var res *sim.OrgAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.OrgAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WideWrite, "wideWr")
	b.ReportMetric(res.HiddenWrite, "hiddenWr")
}

// BenchmarkPausingAblation quantifies §3.2's write pausing.
func BenchmarkPausingAblation(b *testing.B) {
	var res *sim.PausingAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.PausingAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WithWrite, "pauseWr")
	b.ReportMetric(res.WithoutWrite, "noPauseWr")
}

// BenchmarkRthSweep sweeps the §3.2 refresh threshold r_th.
func BenchmarkRthSweep(b *testing.B) {
	ths := []float64{0, 25, 75}
	var res *sim.RthSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.RthSweep(benchConfig(), ths)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, th := range ths {
		b.ReportMetric(res.NormWrite[i], "wr@rth"+itoa(int(th)))
	}
}

// BenchmarkControllerThroughput measures raw simulator speed: requests
// simulated per second through the PCM-refresh architecture (the most
// event-heavy configuration).
func BenchmarkControllerThroughput(b *testing.B) {
	cfg := benchConfig()
	profile := cfg.Profiles
	_ = profile
	opts := core.DefaultOptions()
	sys, err := core.NewSystem(core.Refresh, opts)
	if err != nil {
		b.Fatal(err)
	}
	const n = 50000
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := newBenchGen()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Simulate(gen.limit(n)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "requests/s")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// engineJobParams is one small service job: a four-architecture comparison
// of one benchmark on a reduced geometry, single-threaded so that the
// worker count — not per-job fan-out — sets the concurrency.
func engineJobParams() sim.Params {
	return sim.Params{Requests: 4000, Seed: 3, Bench: []string{"qsort"}, Ranks: 2, Parallelism: 1}
}

// BenchmarkEngineThroughput measures womd job throughput through the
// manager (no HTTP) at worker counts 1/2/4/8: b.N jobs are submitted and
// the pool drained, reporting completed jobs per second.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			mgr := engine.New(engine.Config{
				Workers:    workers,
				QueueDepth: b.N,
				MaxJobs:    b.N + 1,
			})
			req := engine.JobRequest{Experiment: "fig5", Params: engineJobParams()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mgr.Submit(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
			if err := mgr.Shutdown(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			snap := mgr.Metrics().Snapshot()
			if snap.JobsCompleted != uint64(b.N) {
				b.Fatalf("completed %d of %d jobs", snap.JobsCompleted, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkEngineQueueSaturation measures admission control under
// overload: with the single worker busy and the queue full, every further
// submission must be rejected quickly (this is the 429 path a saturated
// womd serves). Reports the rejection rate and the cost of a rejection.
func BenchmarkEngineQueueSaturation(b *testing.B) {
	mgr := engine.New(engine.Config{Workers: 1, QueueDepth: 2, MaxJobs: b.N + 8})
	// A slower job pins the worker while rejections are measured.
	slow := engineJobParams()
	slow.Requests = 400000
	req := engine.JobRequest{Experiment: "fig5", Params: slow}
	var accepted, rejected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch _, err := mgr.Submit(context.Background(), req); {
		case err == nil:
			accepted++
		case errors.Is(err, engine.ErrQueueFull):
			rejected++
		default:
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The worker can drain at most a few slow jobs while b.N submissions
	// race in, so nearly everything past the queue depth must bounce.
	if b.N > 8 && rejected == 0 {
		b.Fatal("queue never saturated")
	}
	for _, j := range mgr.Jobs() {
		if err := mgr.Cancel(j.ID()); err != nil {
			b.Fatal(err)
		}
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*float64(rejected)/float64(b.N), "rejected%")
}

// BenchmarkSchedulingAblation compares write scheduling ([7]) against
// WOM-coding and their combination (the §1 design-space argument).
func BenchmarkSchedulingAblation(b *testing.B) {
	var res *sim.SchedulingAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.SchedulingAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, v := range res.Variants {
		_ = v
		b.ReportMetric(res.Write[i], "wr#"+itoa(i))
	}
}

// BenchmarkHybridAblation compares WCPCM against a hybrid DRAM/PCM cache
// ([18]), quantifying §4's practicality argument.
func BenchmarkHybridAblation(b *testing.B) {
	var res *sim.HybridAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.HybridAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WCPCMWrite, "wcpcmWr")
	b.ReportMetric(res.HybridWrite, "hybridWr")
	b.ReportMetric(100*res.Retention, "retention%")
}
