// Quickstart: the WOM-code PCM reproduction in three steps.
//
//  1. Encode data through the paper's inverted <2^2>^2/3 WOM-code and watch
//     the rewrite use only fast RESET transitions.
//  2. Store real bytes through the functional WOM-code memory, hitting the
//     rewrite limit and the α-write.
//  3. Run a small trace through all four simulated architectures and
//     compare average write latencies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/womcode"
	"womcpcm/internal/workload"
)

func main() {
	step1WOMCode()
	step2FunctionalMemory()
	step3TimingSimulation()
}

func step1WOMCode() {
	fmt.Println("== 1. The inverted <2^2>^2/3 WOM-code (paper Table 1, Fig. 1b) ==")
	code := womcode.InvRS223()
	cur := code.Initial()
	fmt.Printf("erased wits: %03b (all SET at manufacture)\n", cur)
	for gen, v := range []uint64{0b01, 0b11} {
		next, err := code.Encode(cur, v, gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("write %d: data %02b → wits %03b (only 1→0 RESETs), decode %02b\n",
			gen+1, v, next, code.Decode(next))
		cur = next
	}
	fmt.Println("two writes consumed: the next write is the slow α-write")
	fmt.Println()
}

func step2FunctionalMemory() {
	fmt.Println("== 2. Functional WOM-code PCM: real bits, enforced physics ==")
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64,
		ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	mem, err := core.NewFunctionalMemory(core.WOMCode, g, womcode.InvRS223())
	if err != nil {
		log.Fatal(err)
	}
	for i, payload := range [][]byte{
		[]byte("PCM WOM write #1"),
		[]byte("PCM WOM write #2"),
		[]byte("PCM WOM write #3"),
	} {
		res, err := mem.Write(0x40, payload)
		if err != nil {
			log.Fatal(err)
		}
		kind := "fast RESET-only rewrite"
		if res.Alpha {
			kind = "α-write (SET on the critical path)"
		}
		fmt.Printf("write %d: %s — %d SETs, %d RESETs\n", i+1, kind, res.Sets, res.Resets)
	}
	got, err := mem.Read(0x40, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", got)
	w := mem.Wear()
	fmt.Printf("endurance: %d row writes, %d SET ops, %d RESET ops\n\n",
		w.TotalWrites, w.SetOps, w.ResetOps)
}

func step3TimingSimulation() {
	fmt.Println("== 3. Timing simulation: four architectures on one workload ==")
	profile, err := workload.ProfileByName("qsort")
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Geometry = pcm.Geometry{Ranks: 4, BanksPerRank: 32, RowsPerBank: 4096,
		ColsPerRow: 256, BitsPerCol: 4, Devices: 16}

	var baseline float64
	for _, arch := range core.Arches() {
		sys, err := core.NewSystem(arch, opts)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewGenerator(profile, opts.Geometry, 1)
		if err != nil {
			log.Fatal(err)
		}
		run, err := sys.Simulate(trace.NewLimit(gen, 30000))
		if err != nil {
			log.Fatal(err)
		}
		mean := run.WriteLatency.Mean()
		if arch == core.Baseline {
			baseline = mean
		}
		fmt.Printf("%-18s write %7.1f ns (%.3f×)  read %6.1f ns  overhead %.1f%%\n",
			arch, mean, mean/baseline, run.ReadLatency.Mean(),
			100*sys.MemoryOverhead(womcode.Overhead(womcode.InvRS223())))
	}
	fmt.Println("\nsee cmd/womsim for the full paper evaluation (Figs. 5-7)")
}
