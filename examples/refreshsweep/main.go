// refreshsweep explores the §3.2 PCM-refresh policy knobs on one workload:
// the refresh threshold r_th (which ranks qualify for refresh), the
// per-bank row address table depth (the paper uses 5), and write pausing.
// It reports write latency, α-write share, and refresh activity for each
// setting — the tuning a memory-controller architect would actually do.
//
// Run with: go run ./examples/refreshsweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func main() {
	benchName := "qsort"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	profile, err := workload.ProfileByName(benchName)
	if err != nil {
		log.Fatal(err)
	}
	geometry := pcm.DefaultGeometry()
	const requests = 80000

	run := func(refresh *memctrl.RefreshConfig) *stats.Run {
		cfg := memctrl.Config{
			Geometry: geometry,
			Timing:   pcm.DefaultTiming(),
			WOM:      memctrl.DefaultWOM(),
			Refresh:  refresh,
		}
		ctrl, err := memctrl.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewGenerator(profile, geometry, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ctrl.Run(trace.NewLimit(gen, requests))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	noRefresh := run(nil)
	fmt.Printf("workload %s, %d requests — WOM-code PCM without refresh:\n", benchName, requests)
	fmt.Printf("  write %7.1f ns, α-share %.1f%%\n\n", noRefresh.WriteLatency.Mean(), 100*noRefresh.AlphaFraction())

	fmt.Println("refresh threshold r_th sweep (table depth 5, pausing on):")
	fmt.Println("  r_th    write ns    α-share   refreshes   aborted")
	for _, rth := range []float64{0, 5, 10, 25, 50, 75} {
		r := run(&memctrl.RefreshConfig{ThresholdPct: rth, TableSize: 5})
		fmt.Printf("  %4.0f%%   %8.1f   %7.1f%%   %9d   %7d\n",
			rth, r.WriteLatency.Mean(), 100*r.AlphaFraction(), r.Refreshes, r.RefreshAborts)
	}

	fmt.Println("\nrow address table depth sweep (r_th 0, pausing on):")
	fmt.Println("  depth   write ns    α-share   refreshes")
	for _, depth := range []int{1, 2, 5, 16, 64} {
		r := run(&memctrl.RefreshConfig{ThresholdPct: 0, TableSize: depth})
		fmt.Printf("  %5d   %8.1f   %7.1f%%   %9d\n",
			depth, r.WriteLatency.Mean(), 100*r.AlphaFraction(), r.Refreshes)
	}

	fmt.Println("\nranks refreshed per 4000 ns tick (r_th 0, table depth 5):")
	fmt.Println("  cap     write ns    α-share   refreshes")
	for _, cap := range []int{1, 2, 4, 0} {
		r := run(&memctrl.RefreshConfig{ThresholdPct: 0, TableSize: 5, MaxRanksPerTick: cap})
		label := fmt.Sprintf("%5d", cap)
		if cap == 0 {
			label = "  all"
		}
		fmt.Printf("  %s   %8.1f   %7.1f%%   %9d\n",
			label, r.WriteLatency.Mean(), 100*r.AlphaFraction(), r.Refreshes)
	}

	fmt.Println("\nwrite pausing ablation (r_th 0, table depth 5):")
	for _, noPause := range []bool{false, true} {
		r := run(&memctrl.RefreshConfig{ThresholdPct: 0, TableSize: 5, NoPausing: noPause})
		label := "with pausing   "
		if noPause {
			label = "without pausing"
		}
		fmt.Printf("  %s  write %7.1f ns  read %6.1f ns  aborted refreshes %d\n",
			label, r.WriteLatency.Mean(), r.ReadLatency.Mean(), r.RefreshAborts)
	}
}
