// endurance explores the paper's declared future work (§6): what WOM-code
// PCM means for device lifetime. Three measurements:
//
//  1. Cell-level wear: hammering one row through the functional models and
//     comparing SET/RESET transition counts — WOM-code rewrites touch few
//     cells and never SET, so the stress profile changes completely.
//  2. Row-level wear: the same hot-row hammer behind a Start-Gap wear
//     leveler (Qureshi et al., MICRO 2009) spreads physical writes across
//     the region.
//  3. Projected lifetime with and without leveling under a 10^8-write cell
//     endurance assumption.
//
// Run with: go run ./examples/endurance
package main

import (
	"fmt"
	"log"

	"womcpcm/internal/core"
	"womcpcm/internal/endurance"
	"womcpcm/internal/pcm"
	"womcpcm/internal/womcode"
)

const hammerWrites = 3000

// geometryRows is the full §5 device's row population.
func geometryRows() int {
	g := pcm.DefaultGeometry()
	return g.Ranks * g.BanksPerRank * g.RowsPerBank
}

// years renders a lifetime in sensible units.
func years(y float64) string {
	switch {
	case y >= 1:
		return fmt.Sprintf("%.1f years", y)
	case y*365.25 >= 1:
		return fmt.Sprintf("%.1f days", y*365.25)
	default:
		return fmt.Sprintf("%.1f hours", y*365.25*24)
	}
}

func main() {
	cellWear()
	rowWear()
	lifetimes()
}

func geometry() pcm.Geometry {
	return pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64,
		ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
}

func cellWear() {
	fmt.Println("== 1. SET pulses on the critical path under a hot-row hammer ==")
	// Alternating 0xAA/0x55 flips every bit in both directions on every
	// write: conventional PCM must SET half the cells every single time.
	payloads := [2][]byte{make([]byte, 16), make([]byte, 16)}
	for i := range payloads[0] {
		payloads[0][i], payloads[1][i] = 0xAA, 0x55
	}
	for _, arch := range []core.Arch{core.Baseline, core.WOMCode} {
		mem, err := core.NewFunctionalMemory(arch, geometry(), womcode.InvRS223())
		if err != nil {
			log.Fatal(err)
		}
		var setBound int
		for i := 0; i < hammerWrites; i++ {
			res, err := mem.Write(0x80, payloads[i%2])
			if err != nil {
				log.Fatal(err)
			}
			if res.Alpha {
				setBound++
			}
		}
		w := mem.Wear()
		fmt.Printf("%-18s %5d row writes → %4d SET-bound (%.0f%%), %7d SET ops total\n",
			arch, w.TotalWrites, setBound,
			100*float64(setBound)/float64(w.TotalWrites), w.SetOps)
	}
	fmt.Println("Total SET work is data-driven and roughly conserved; what the WOM-code")
	fmt.Println("changes is WHICH writes carry it — only the α-writes (every other write")
	fmt.Println("with the k=2 code), and PCM-refresh then moves those into idle cycles.")
	fmt.Println()
}

func rowWear() {
	fmt.Println("== 2. Row wear with Start-Gap leveling ==")
	const regionRows, period = 63, 16
	run := func(leveled bool) (max uint64, touched int) {
		arr, err := pcm.NewArray(regionRows+1, 64, false)
		if err != nil {
			log.Fatal(err)
		}
		sg, err := endurance.NewStartGap(regionRows, period)
		if err != nil {
			log.Fatal(err)
		}
		copyRow := func(src, dst int) error {
			row, err := arr.ReadRow(src)
			if err != nil {
				return err
			}
			_, _, err = arr.ProgramRow(dst, row, pcm.FullWrite)
			return err
		}
		for i := 0; i < hammerWrites; i++ {
			logical := 7 // always the same hot row
			phys := logical
			if leveled {
				if phys, err = sg.Map(logical); err != nil {
					log.Fatal(err)
				}
			}
			pattern := []byte{byte(i), byte(i >> 3), byte(i >> 6), 0, 0, 0, 0, 0}
			if _, _, err := arr.ProgramRow(phys, pattern, pcm.FullWrite); err != nil {
				log.Fatal(err)
			}
			if leveled {
				if _, err := sg.OnWrite(copyRow); err != nil {
					log.Fatal(err)
				}
			}
		}
		w := arr.WearStats()
		return w.MaxRowWrites, w.TouchedRows
	}
	maxPlain, touchedPlain := run(false)
	maxLeveled, touchedLeveled := run(true)
	fmt.Printf("without leveling: hottest row %d writes, %d rows touched\n", maxPlain, touchedPlain)
	fmt.Printf("with Start-Gap : hottest row %d writes, %d rows touched (%.1f× wear reduction)\n",
		maxLeveled, touchedLeveled, float64(maxPlain)/float64(maxLeveled))
	fmt.Println()
}

func lifetimes() {
	fmt.Println("== 3. Projected lifetime (10^8-write cells) ==")
	l := endurance.DefaultLifetime()
	// A write-hot workload: ~1M row writes/s, the hottest row catching
	// 1/200 of them, leveled over the full 16M-row device.
	const (
		windowNs    = int64(1e9)
		totalWrites = 1_000_000
		hotRowShare = 200
	)
	regionRows := geometryRows()
	unlev, lev, err := l.Estimate(totalWrites/hotRowShare, totalWrites, regionRows, windowNs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hottest-row pinned : %s\n", years(unlev))
	fmt.Printf("device-wide leveled: %s (%.0f× gain)\n", years(lev), lev/unlev)
	fmt.Println("\nWOM-code PCM composes with leveling: the α-write rate sets the SET")
	fmt.Println("stress, and PCM-refresh moves those α-writes into idle cycles without")
	fmt.Println("changing their count — §6's open problem, quantified.")
}
