// h264pipeline models the paper's best-case benchmark (§5: 464.h264ref,
// 39.2 % write latency reduction) as a concrete scenario: a video encoder
// whose reference-frame buffers are rewritten macroblock by macroblock,
// frame after frame — exactly the bounded hot write set the WOM rewrite
// budget and PCM-refresh feed on.
//
// The example builds the access stream explicitly (no workload generator):
// for each frame, every macroblock row of the two reference frames is
// written once and read several times by motion estimation. It then runs
// the stream through all four architectures and reports the latency
// breakdown.
//
// Run with: go run ./examples/h264pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

const (
	frames        = 40
	frameRows     = 128  // rows per reference frame
	refFrames     = 2    // double-buffered reference frames
	motionReads   = 3    // motion-estimation reads per written row
	interArrival  = 220  // ns between accesses within a frame
	frameBlanking = 80e3 // ns of idle time between frames (display blanking)
)

func buildStream(g pcm.Geometry) []trace.Record {
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var recs []trace.Record
	now := int64(0)
	rowAddr := func(frame, row int) uint64 {
		// Reference frames live in a contiguous region; rows interleave
		// across banks under the default mapping.
		global := frame*frameRows + row
		return uint64(global) * uint64(mapper.Geometry().RowBytes())
	}
	for f := 0; f < frames; f++ {
		target := f % refFrames // which reference buffer this frame rewrites
		for row := 0; row < frameRows; row++ {
			// Deblocked macroblock row written back to the reference frame.
			now += interArrival
			recs = append(recs, trace.Record{Op: trace.Write, Addr: rowAddr(target, row), Time: now})
			// Motion estimation reads the *other* reference frame around
			// the same row.
			other := (target + 1) % refFrames
			for r := 0; r < motionReads; r++ {
				now += interArrival
				probe := (row + rng.Intn(5) - 2 + frameRows) % frameRows
				recs = append(recs, trace.Record{Op: trace.Read, Addr: rowAddr(other, probe), Time: now})
			}
		}
		now += frameBlanking
	}
	return recs
}

func main() {
	opts := core.DefaultOptions()
	opts.Geometry = pcm.Geometry{Ranks: 4, BanksPerRank: 32, RowsPerBank: 4096,
		ColsPerRow: 256, BitsPerCol: 4, Devices: 16}
	stream := buildStream(opts.Geometry)
	fmt.Printf("h264 pipeline: %d frames, %d accesses (%d writes/frame), idle blanking %v ns\n\n",
		frames, len(stream), frameRows, int64(frameBlanking))

	var base *stats.Run
	for _, arch := range core.Arches() {
		sys, err := core.NewSystem(arch, opts)
		if err != nil {
			log.Fatal(err)
		}
		run, err := sys.SimulateRecords(stream)
		if err != nil {
			log.Fatal(err)
		}
		if arch == core.Baseline {
			base = run
		}
		w, r := run.Normalized(base)
		fmt.Printf("%-18s write %7.1f ns (%.3f×)  read %6.1f ns (%.3f×)  α-fraction %5.1f%%",
			arch, run.WriteLatency.Mean(), w, run.ReadLatency.Mean(), r, 100*run.AlphaFraction())
		if run.Refreshes > 0 {
			fmt.Printf("  refreshes %d", run.Refreshes)
		}
		if run.CacheHits+run.CacheMisses > 0 {
			fmt.Printf("  cache hit %.1f%%", 100*run.CacheHitRate())
		}
		fmt.Println()
	}

	fmt.Println("\nThe frame-blanking idle windows are where PCM-refresh restores the")
	fmt.Println("reference-frame rows, which is why it eliminates nearly every α-write —")
	fmt.Println("the paper's §3.2 mechanism on its own best benchmark.")
}
