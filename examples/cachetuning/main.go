// cachetuning walks the §4 WCPCM design space the way Figs. 6 and 7 do:
// for one workload it sweeps banks/rank, reporting the WOM-cache hit rate,
// memory overhead (1.5/N_bank — the paper's 4.7 % claim at 32 banks), and
// the resulting write latency against conventional PCM and full WOM-code
// PCM. It shows the trade the paper's architecture makes: a sliver of
// WOM-coded capacity buys most of the write-latency benefit.
//
// Run with: go run ./examples/cachetuning [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/womcode"
	"womcpcm/internal/workload"
)

func main() {
	benchName := "464.h264ref"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	profile, err := workload.ProfileByName(benchName)
	if err != nil {
		log.Fatal(err)
	}
	const requests = 60000
	codeOverhead := womcode.Overhead(womcode.InvRS223())

	run := func(arch core.Arch, g pcm.Geometry) (float64, float64, float64) {
		opts := core.DefaultOptions()
		opts.Geometry = g
		sys, err := core.NewSystem(arch, opts)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewGenerator(profile, g, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Simulate(trace.NewLimit(gen, requests))
		if err != nil {
			log.Fatal(err)
		}
		return res.WriteLatency.Mean(), res.CacheHitRate(), sys.MemoryOverhead(codeOverhead)
	}

	base := pcm.DefaultGeometry()
	baseWrite, _, _ := run(core.Baseline, base)
	womWrite, _, womOver := run(core.WOMCode, base)

	fmt.Printf("workload %s, %d requests\n\n", benchName, requests)
	fmt.Printf("conventional PCM : write %7.1f ns, overhead  0.0%%\n", baseWrite)
	fmt.Printf("WOM-code PCM     : write %7.1f ns (%.3f×), overhead %4.1f%%\n\n",
		womWrite, womWrite/baseWrite, 100*womOver)

	fmt.Println("WCPCM (WOM-cache) per banks/rank — the Fig. 6/7 sweep:")
	fmt.Println("banks/rank   hit rate   overhead   write ns   vs baseline")
	for _, banks := range []int{4, 8, 16, 32} {
		g := base
		g.BanksPerRank = banks
		w, hit, over := run(core.WCPCM, g)
		fmt.Printf("%10d   %7.1f%%   %7.2f%%   %8.1f   %.3f×\n",
			banks, 100*hit, 100*over, w, w/baseWrite)
	}
	fmt.Println("\nAt 32 banks/rank WCPCM keeps most of the WOM-code benefit for ~1/10")
	fmt.Println("of its memory overhead — the paper's headline trade (§4).")
}
