#!/usr/bin/env sh
# loadgen_smoke.sh — end-to-end multi-tenant load check against a real womd.
#
# Builds womd and womtool, starts womd with the example tenant config,
# drives a short open-loop Poisson run through `womtool loadgen` with the
# interactive tenant's queue-wait SLO asserted, verifies the report schema,
# and exercises the SIGHUP config hot-reload path. The report lands at
# $1 (default ./loadgen-report.json) so CI can keep it as an artifact.
#
# Usage: scripts/loadgen_smoke.sh [report-path] [port]
set -eu

REPORT="${1:-loadgen-report.json}"
PORT="${2:-18090}"
URL="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
WOMD_PID=""

cleanup() {
    [ -n "$WOMD_PID" ] && kill "$WOMD_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    echo "--- womd log ---" >&2
    cat "$WORKDIR/womd.log" >&2 || true
    exit 1
}

wait_for() {
    url="$1"; pattern="$2"; what="$3"
    i=0
    while [ "$i" -lt 150 ]; do
        if curl -fsS "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    fail "$what (no match for '$pattern' at $url)"
}

echo "==> building womd and womtool"
go build -o "$WORKDIR/womd" ./cmd/womd
go build -o "$WORKDIR/womtool" ./cmd/womtool

echo "==> starting womd on :$PORT with examples/multitenant/tenants.json"
"$WORKDIR/womd" -addr ":$PORT" -tenants examples/multitenant/tenants.json \
    >"$WORKDIR/womd.log" 2>&1 &
WOMD_PID=$!
wait_for "$URL/v1/experiments" '"fig5"' "womd never came up"
wait_for "$URL/v1/tenants" '"interactive"' "tenant scheduler not active"

echo "==> open-loop Poisson run (SLO asserted for the interactive tenant)"
"$WORKDIR/womtool" loadgen -url "$URL" -mix examples/multitenant/smoke-mix.json \
    -o "$REPORT" -assert-slo interactive \
    || fail "loadgen run or SLO assertion failed"
grep -q '"schema": *"womcpcm-loadgen-v1"' "$REPORT" \
    || fail "report at $REPORT missing the womcpcm-loadgen-v1 schema"
grep -q '"slo_attained": *true' "$REPORT" \
    || fail "report does not record interactive SLO attainment"

echo "==> tenant metrics exposed on /metrics"
curl -fsS "$URL/metrics" | grep -q 'womd_tenant_admitted_total{tenant="interactive"}' \
    || fail "womd_tenant_* families missing from /metrics"

echo "==> SIGHUP hot-reload keeps the scheduler serving"
kill -HUP "$WOMD_PID"
sleep 0.3
wait_for "$URL/v1/tenants" '"best-effort"' "scheduler unavailable after SIGHUP"
grep -q 'tenant config reloaded' "$WORKDIR/womd.log" \
    || fail "womd log missing the reload confirmation"

echo "==> OK: loadgen report at $REPORT"
