#!/usr/bin/env sh
# alerts_smoke.sh — end-to-end SLO alerting check against a real womd.
#
# Builds womd, starts it standalone with a tiny queue and an aggressive
# alert-rules file (200ms evaluation, queue_saturation at 50%), then
# saturates the queue with slow fig5 jobs and asserts the full operator
# surface reacts: GET /readyz flips to 503, the queue-hot alert reaches
# "firing" on GET /v1/alerts with the saturation rule named, and the
# womd_alert_* families count the transition on /metrics. Leaves
# alerts-smoke.json (the firing alert list) in the working directory for
# CI to keep as an artifact.
#
# Usage: scripts/alerts_smoke.sh [port]
set -eu

PORT="${1:-18082}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
WOMD_PID=""

cleanup() {
    [ -n "$WOMD_PID" ] && kill "$WOMD_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    echo "--- womd log ---" >&2
    cat "$WORKDIR/womd.log" >&2 || true
    exit 1
}

# Poll url until its body matches pattern or ~15s pass.
wait_for() {
    url="$1"; pattern="$2"; what="$3"
    i=0
    while [ "$i" -lt 150 ]; do
        if curl -fsS "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    fail "$what (no match for '$pattern' at $url)"
}

echo "==> building womd"
go build -o "$WORKDIR/womd" ./cmd/womd

cat > "$WORKDIR/rules.json" <<'EOF'
{
  "interval_ms": 200,
  "rules": [
    {"name": "queue-hot", "kind": "queue_saturation", "severity": "page",
     "threshold": 0.5, "for_s": 0, "keep_firing_s": 60}
  ]
}
EOF

echo "==> starting womd on :$PORT (1 worker, queue depth 4, 200ms alert evaluation)"
"$WORKDIR/womd" -addr ":$PORT" -workers 1 -queue 4 \
    -alert-rules "$WORKDIR/rules.json" -timeout 60s \
    >"$WORKDIR/womd.log" 2>&1 &
WOMD_PID=$!
wait_for "$BASE/v1/experiments" '"fig5"' "womd never came up"

curl -fsS "$BASE/readyz" | grep -q '"ready": *true' \
    || fail "/readyz not ready on an idle daemon"

echo "==> saturating the queue with slow jobs"
# One job occupies the single worker; the rest sit in the depth-4 queue,
# holding occupancy over both the 50% alert threshold and the 90%
# readiness threshold. Overflow 429s are expected and ignored.
i=0
while [ "$i" -lt 6 ]; do
    curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
        -d '{"experiment":"fig5","params":{"requests":30000000,"bench":["qsort"],"ranks":4,"seed":'"$i"'}}' \
        >/dev/null 2>&1 || true
    i=$((i + 1))
done

echo "==> waiting for readiness to flip"
i=0
while [ "$i" -lt 150 ]; do
    code=$(curl -s -o "$WORKDIR/readyz.json" -w '%{http_code}' "$BASE/readyz")
    [ "$code" = "503" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ "$code" = "503" ] || fail "/readyz never returned 503 under saturation"
grep -q '"ready": *false' "$WORKDIR/readyz.json" \
    || fail "503 /readyz body does not say ready=false"
grep -q 'queue saturated' "$WORKDIR/readyz.json" \
    || fail "/readyz reason is not queue saturation: $(cat "$WORKDIR/readyz.json")"

echo "==> waiting for the queue-hot alert to fire"
wait_for "$BASE/v1/alerts" '"state": *"firing"' "no alert ever fired"
alerts=$(curl -fsS "$BASE/v1/alerts") || fail "/v1/alerts unreadable"
printf '%s\n' "$alerts" > alerts-smoke.json
echo "$alerts" | grep -q '"rule": *"queue-hot"' \
    || fail "firing alert is not the queue_saturation rule: $alerts"
echo "$alerts" | grep -q '"subject": *"queue"' \
    || fail "queue-hot alert has the wrong subject: $alerts"

echo "==> checking womd_alert_* families on /metrics"
prom=$(curl -fsS "$BASE/metrics") || fail "/metrics unreadable"
echo "$prom" | grep -q 'womd_alerts{state="firing"} [1-9]' \
    || fail "womd_alerts firing gauge is not counting"
echo "$prom" | grep -q 'womd_alert_firing{rule="queue-hot",subject="queue"} 1' \
    || fail "womd_alert_firing sample missing"
echo "$prom" | grep -q 'womd_alert_transitions_total{state="firing"} [1-9]' \
    || fail "firing transition counter missing"

echo "==> OK: saturation flipped /readyz, fired queue-hot, and landed on /metrics"
