#!/usr/bin/env sh
# history_smoke.sh — end-to-end metric-history check against a real womd.
#
# Builds womd and womtool, starts womd with a persistent -history-dir and
# a fast scrape interval, runs jobs, and asserts the embedded TSDB
# answers: /v1/series discovers scraped families, /v1/query_range returns
# points, and a firing alert lands in /v1/alerts/history. Then restarts
# the daemon against the same directory and asserts continuity: history
# from before the restart still answers queries, the alert journal
# survived, and the restored alert is re-evaluated (still firing) within
# one scrape interval. Finally renders `womtool graph` from the history
# and leaves history-smoke.html in the working directory for CI to keep
# as an artifact, and checks `womtool top -once` exits 2 while an alert
# is firing.
#
# Usage: scripts/history_smoke.sh [port]
set -eu

PORT="${1:-18083}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
HISTDIR="$WORKDIR/history"
WOMD_PID=""

cleanup() {
    [ -n "$WOMD_PID" ] && kill "$WOMD_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    echo "--- womd log ---" >&2
    cat "$WORKDIR/womd.log" >&2 || true
    exit 1
}

# Poll url until its body matches pattern or ~15s pass.
wait_for() {
    url="$1"; pattern="$2"; what="$3"
    i=0
    while [ "$i" -lt 150 ]; do
        if curl -fsS "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    fail "$what (no match for '$pattern' at $url)"
}

start_womd() {
    "$WORKDIR/womd" -addr ":$PORT" -workers 1 -queue 4 \
        -history-dir "$HISTDIR" -history-scrape 250ms \
        -alert-rules "$WORKDIR/rules.json" -timeout 60s -drain 2s \
        >>"$WORKDIR/womd.log" 2>&1 &
    WOMD_PID=$!
    wait_for "$BASE/v1/experiments" '"fig5"' "womd never came up"
}

echo "==> building womd and womtool"
go build -o "$WORKDIR/womd" ./cmd/womd
go build -o "$WORKDIR/womtool" ./cmd/womtool

cat > "$WORKDIR/rules.json" <<'EOF'
{
  "interval_ms": 200,
  "rules": [
    {"name": "queue-hot", "kind": "queue_saturation", "severity": "page",
     "threshold": 0.5, "for_s": 0, "keep_firing_s": 120}
  ]
}
EOF

echo "==> starting womd on :$PORT (250ms history scrape, persistent $HISTDIR)"
start_womd

echo "==> running a job and waiting for history to see it"
curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig5","params":{"requests":20000,"bench":["qsort"],"ranks":4}}' \
    >/dev/null || fail "job submission refused"
wait_for "$BASE/v1/series?metric=womd_jobs_completed_total" '"metric"' \
    "history never discovered womd_jobs_completed_total"
wait_for "$BASE/v1/series?metric=womd_history_job_wall_seconds" '"experiment"' \
    "job hot-path hook never recorded into history"

now=$(date +%s)
range="start=$((now - 300))&end=$((now + 5))&step=5s"
curl -fsS "$BASE/v1/query_range?metric=womd_uptime_seconds&agg=max&$range" \
    | grep -q '"points": *\[' || fail "query_range returned no points"
curl -fsS -o /dev/null -w '%{http_code}' "$BASE/v1/query_range?metric=womd_up&start=9&end=5" \
    | grep -q 400 || fail "bad query_range did not 400"

echo "==> saturating the queue so queue-hot fires and is journaled"
i=0
while [ "$i" -lt 6 ]; do
    curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
        -d '{"experiment":"fig5","params":{"requests":30000000,"bench":["qsort"],"ranks":4,"seed":'"$i"'}}' \
        >/dev/null 2>&1 || true
    i=$((i + 1))
done
wait_for "$BASE/v1/alerts" '"state": *"firing"' "queue-hot never fired"
wait_for "$BASE/v1/alerts/history" '"to": *"firing"' "firing transition never journaled"

echo "==> womtool top -once must exit 2 while an alert is firing"
set +e
"$WORKDIR/womtool" top -once -url "$BASE" >"$WORKDIR/top.txt" 2>&1
top_rc=$?
set -e
[ "$top_rc" = "2" ] || fail "womtool top -once exit=$top_rc with a firing alert, want 2"
grep -q 'FIRING' "$WORKDIR/top.txt" || fail "top frame does not show the firing alert"

echo "==> restarting womd against the same history directory"
kill "$WOMD_PID" 2>/dev/null || true
wait "$WOMD_PID" 2>/dev/null || true
WOMD_PID=""
start_womd

echo "==> continuity: pre-restart history and alert journal must survive"
curl -fsS "$BASE/v1/query_range?metric=womd_uptime_seconds&agg=max&$range" \
    | grep -q '"points": *\[' || fail "pre-restart samples gone after restart"
curl -fsS "$BASE/v1/alerts/history" | grep -q '"to": *"firing"' \
    || fail "alert journal gone after restart"

echo "==> restored alert must be re-evaluated within one scrape interval"
# The queue is empty after the restart (jobs died with the old process),
# so the journaled queue-hot alert comes back, is re-evaluated against
# live signals, and rides keep_firing — visible on /v1/alerts as a
# restored firing alert.
wait_for "$BASE/v1/alerts" '"restored": *"true"' "journaled alert not reinstalled"

echo "==> rendering womtool graph from history"
"$WORKDIR/womtool" graph -url "$BASE" -window 10m -o history-smoke.html \
    || fail "womtool graph failed"
grep -q '<polyline' history-smoke.html || fail "graph HTML has no polylines"
grep -q 'womd_jobs_completed_total' history-smoke.html \
    || fail "graph HTML missing the jobs chart"

echo "==> checking womd_history_* families on /metrics"
prom=$(curl -fsS "$BASE/metrics") || fail "/metrics unreadable"
echo "$prom" | grep -q 'womd_history_series [1-9]' || fail "womd_history_series gauge missing"
echo "$prom" | grep -q 'womd_history_scrapes_total [1-9]' || fail "scrape counter missing"

echo "==> OK: history answered, survived a restart, reinstalled its alert, and rendered graphs"
