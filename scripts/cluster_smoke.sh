#!/usr/bin/env sh
# cluster_smoke.sh — end-to-end cluster check against real processes.
#
# Builds womd, starts a coordinator and one worker on localhost, submits a
# small fig5 job through the coordinator's public API, and asserts that it
# completes AND that it executed on the worker (the job view carries a
# worker id). Exercises the same wire path as production: register,
# heartbeat, dispatch, event stream, result. Then checks the
# observability planes over the same processes: the merged distributed
# trace (coordinator + worker spans on /v1/jobs/{id}/trace, rendered by
# womtool spans), fleet metrics federation (worker families on the
# coordinator's /metrics as womd_fleet_*, /v1/fleet summary), readiness
# probes (/readyz on both roles), and the alerting plane (/v1/alerts
# quiet on a healthy cluster, womd_alert_* on /metrics, one `womtool top`
# frame). Leaves cluster-trace.json, cluster-trace.html, and
# cluster-alerts.json in the working directory for CI to keep as
# artifacts.
#
# Usage: scripts/cluster_smoke.sh [coordinator-port] [worker-port]
set -eu

COORD_PORT="${1:-18080}"
WORKER_PORT="${2:-18081}"
COORD="http://127.0.0.1:${COORD_PORT}"
WORKER="http://127.0.0.1:${WORKER_PORT}"
WORKDIR="$(mktemp -d)"
COORD_PID=""
WORKER_PID=""

cleanup() {
    [ -n "$WORKER_PID" ] && kill "$WORKER_PID" 2>/dev/null || true
    [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    echo "--- coordinator log ---" >&2
    cat "$WORKDIR/coordinator.log" >&2 || true
    echo "--- worker log ---" >&2
    cat "$WORKDIR/worker.log" >&2 || true
    exit 1
}

# Poll url until its body matches pattern or ~15s pass.
wait_for() {
    url="$1"; pattern="$2"; what="$3"
    i=0
    while [ "$i" -lt 150 ]; do
        if curl -fsS "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    fail "$what (no match for '$pattern' at $url)"
}

echo "==> building womd"
go build -o "$WORKDIR/womd" ./cmd/womd

echo "==> starting coordinator on :$COORD_PORT"
"$WORKDIR/womd" -role=coordinator -addr ":$COORD_PORT" \
    -cluster-heartbeat 500ms -cluster-evict-after 3s \
    >"$WORKDIR/coordinator.log" 2>&1 &
COORD_PID=$!
wait_for "$COORD/v1/experiments" '"fig5"' "coordinator never came up"

echo "==> starting worker on :$WORKER_PORT"
"$WORKDIR/womd" -role=worker -addr ":$WORKER_PORT" -coordinator "$COORD" \
    -cluster-name smoke-worker -cluster-heartbeat 500ms \
    >"$WORKDIR/worker.log" 2>&1 &
WORKER_PID=$!
wait_for "$COORD/cluster/v1/workers" '"smoke-worker"' "worker never registered"

echo "==> submitting fig5 job to the coordinator"
job=$(curl -fsS -X POST "$COORD/v1/jobs" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig5","params":{"requests":20000,"bench":["qsort"],"ranks":4,"seed":7}}') \
    || fail "job submission rejected"
job_id=$(echo "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$job_id" ] || fail "no job id in submit response: $job"
echo "    job $job_id accepted"

wait_for "$COORD/v1/jobs/$job_id" '"state": *"succeeded"' "job never succeeded"

view=$(curl -fsS "$COORD/v1/jobs/$job_id")
echo "$view" | grep -q '"worker": *"w-' \
    || fail "job completed but not on a worker: $view"
curl -fsS "$COORD/v1/jobs/$job_id/result" | grep -q '"experiment": *"fig5"' \
    || fail "result endpoint did not serve the fig5 result"
curl -fsS "$COORD/metrics" | grep -q 'womd_cluster_dispatch_total{worker="w-001",outcome="ok"} 1' \
    || fail "dispatch metric missing from /metrics"

worker_id=$(echo "$view" | sed -n 's/.*"worker": *"\([^"]*\)".*/\1/p' | head -n 1)
echo "==> OK: job $job_id executed on worker $worker_id"

echo "==> fetching the merged distributed trace"
# Worker spans arrive on the done frame (or the POST fallback just
# after); wait until the worker's service shows up in the trace, then
# keep the document for the CI artifact.
wait_for "$COORD/v1/jobs/$job_id/trace" '"smoke-worker"' \
    "worker spans never reached the coordinator's trace buffer"
curl -fsS "$COORD/v1/jobs/$job_id/trace" > cluster-trace.json \
    || fail "trace endpoint did not serve the merged trace"
for span_name in '"job"' '"dispatch"' '"execute"' '"queue_wait"'; do
    grep -q "$span_name" cluster-trace.json \
        || fail "merged trace missing a $span_name span"
done

echo "==> rendering the trace waterfall with womtool spans"
go run ./cmd/womtool spans cluster-trace.json -o cluster-trace.html \
    || fail "womtool spans could not render the trace"
grep -q 'womd job trace' cluster-trace.html \
    || fail "rendered waterfall looks empty"

echo "==> checking fleet metrics federation"
# The federation loop runs every 2x heartbeat (1s here); wait for a pass
# that saw the worker's completed job.
wait_for "$COORD/metrics" "womd_fleet_jobs_completed_total{instance=\"$worker_id\"} 1" \
    "worker metrics never federated onto the coordinator"
# Buffer the bodies: grep -q hanging up mid-transfer makes curl noisy.
prom=$(curl -fsS "$COORD/metrics") || fail "coordinator /metrics unreadable"
echo "$prom" | grep -q 'womd_fleet_instances 1' \
    || fail "womd_fleet_instances does not count the worker"
fleet=$(curl -fsS "$COORD/v1/fleet") || fail "/v1/fleet unreadable"
echo "$fleet" | grep -q '"completed": *1' \
    || fail "/v1/fleet does not report the completed job"

echo "==> checking readiness probes"
# Idle processes must be ready on both roles; /healthz keeps answering 200
# alongside (liveness and readiness are distinct probes).
curl -fsS "$COORD/readyz" | grep -q '"ready": *true' \
    || fail "coordinator /readyz not ready while idle"
curl -fsS "$WORKER/readyz" | grep -q '"ready": *true' \
    || fail "worker /readyz not ready while idle"
echo "$fleet" | grep -q '"ready": *true' \
    || fail "/v1/fleet does not report the worker ready"

echo "==> checking the alerting plane"
# Alerting is on by default; a healthy idle cluster serves an alert list
# with nothing firing, and the womd_alert_* families are on /metrics.
alerts=$(curl -fsS "$COORD/v1/alerts") || fail "/v1/alerts unreadable"
printf '%s\n' "$alerts" > cluster-alerts.json
echo "$alerts" | grep -q '"alerts":' \
    || fail "/v1/alerts body missing the alert list: $alerts"
echo "$alerts" | grep -q '"state": *"firing"' \
    && fail "healthy cluster has a firing alert: $alerts"
echo "$prom" | grep -q 'womd_alerts{state="firing"} 0' \
    || fail "womd_alerts firing gauge missing from /metrics"
echo "$prom" | grep -q 'womd_alert_evaluations_total' \
    || fail "womd_alert_evaluations_total missing from /metrics"

echo "==> rendering one ops-dashboard frame with womtool top"
go run ./cmd/womtool top -url "$COORD" -once > "$WORKDIR/top.txt" \
    || fail "womtool top could not render a frame"
grep -q 'ALERTS' "$WORKDIR/top.txt" || fail "top frame missing the alerts section"
grep -q 'FLEET' "$WORKDIR/top.txt" || fail "top frame missing the fleet section"

echo "==> OK: merged trace + federated fleet metrics + readiness + alerts verified"
