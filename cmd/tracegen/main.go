// Command tracegen materializes the synthetic benchmark workloads into
// trace files — the repository's stand-in for the paper's Pin-captured
// traces (§5). Traces can be written in the human-readable text format or
// the compact binary format, and replayed with womsim or any custom driver
// built on internal/trace.
//
// Usage:
//
//	tracegen -bench 464.h264ref -n 100000 -o h264.trace
//	tracegen -bench qsort -format text -o - | head
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark name (see -list)")
		n      = flag.Int("n", 100000, "number of records")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "bin", "output format: bin or text")
		out    = flag.String("o", "-", "output file (- for stdout)")
		list   = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-16s %-12s reads %.0f%%  footprint %d rows  mean gap %.0f ns\n",
				p.Name, p.Suite, 100*p.ReadFraction, p.FootprintRows, p.MeanGapNs)
		}
		return
	}
	if *bench == "" {
		fatal(fmt.Errorf("missing -bench (use -list to see choices)"))
	}
	p, err := workload.ProfileByName(*bench)
	if err != nil {
		fatal(err)
	}
	gen, err := workload.NewGenerator(p, pcm.DefaultGeometry(), *seed)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	src := trace.NewLimit(gen, *n)
	switch *format {
	case "text":
		tw := trace.NewTextWriter(w)
		tw.Comment(fmt.Sprintf("benchmark %s seed %d records %d", p.Name, *seed, *n))
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			tw.Write(rec)
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d text records\n", tw.Count())
	case "bin":
		bw := trace.NewBinWriter(w)
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			bw.Write(rec)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d binary records\n", bw.Count())
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
