// Command tracestat characterizes a memory access trace the way a
// simulationist would before feeding it to womsim: operation mix, arrival
// intensity, row-level footprint and reuse, write-row reuse intervals
// (the quantity PCM-refresh feeds on — rows rewritten more often than the
// 4000 ns refresh period cannot be saved from α-writes), and the spread
// across ranks and banks.
//
// Usage:
//
//	tracegen -bench 464.h264ref -n 200000 -o h264.trace
//	tracestat h264.trace
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracestat <trace-file>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var src trace.Source
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return err
	}
	if len(head) == 4 && string(head) == "WOMT" {
		src = trace.NewBinReader(br)
	} else {
		src = trace.NewTextReader(br)
	}

	g := pcm.DefaultGeometry()
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		return err
	}

	var (
		reads, writes  uint64
		firstT, lastT  int64
		first          = true
		rowTouches     = map[uint64]uint64{}
		rowWrites      = map[uint64]uint64{}
		lastWriteAt    = map[uint64]int64{}
		reuseUnderPer  uint64 // write reuses faster than the refresh period
		reuseTotal     uint64
		rankLoad       = make([]uint64, g.Ranks)
		rowBytes       = uint64(g.RowBytes())
		refreshPeriodN = pcm.DefaultTiming().RefreshPeriod
	)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if first {
			firstT = rec.Time
			first = false
		}
		lastT = rec.Time
		row := rec.Addr / rowBytes
		rowTouches[row]++
		loc := mapper.Map(rec.Addr)
		rankLoad[loc.Rank]++
		if rec.Op == trace.Read {
			reads++
			continue
		}
		writes++
		rowWrites[row]++
		if prev, ok := lastWriteAt[row]; ok {
			reuseTotal++
			if rec.Time-prev < refreshPeriodN {
				reuseUnderPer++
			}
		}
		lastWriteAt[row] = rec.Time
	}
	if err := src.Err(); err != nil {
		return err
	}
	total := reads + writes
	if total == 0 {
		return fmt.Errorf("empty trace")
	}

	fmt.Printf("records            %d (%d reads, %d writes — %.1f%% writes)\n",
		total, reads, writes, 100*float64(writes)/float64(total))
	span := lastT - firstT
	fmt.Printf("span               %.3f ms, mean inter-arrival %.1f ns\n",
		float64(span)/1e6, float64(span)/float64(total-1))
	fmt.Printf("distinct rows      %d touched, %d written\n", len(rowTouches), len(rowWrites))

	// Write-row reuse: the WOM/refresh feedstock.
	if reuseTotal > 0 {
		fmt.Printf("write-row reuse    %d rewrites (%.1f%% of writes); %.1f%% within the %d ns refresh period\n",
			reuseTotal, 100*float64(reuseTotal)/float64(writes),
			100*float64(reuseUnderPer)/float64(reuseTotal), refreshPeriodN)
	} else {
		fmt.Println("write-row reuse    none (every written row is written once)")
	}

	// Hottest written rows.
	type hot struct {
		row uint64
		n   uint64
	}
	hots := make([]hot, 0, len(rowWrites))
	for r, n := range rowWrites {
		hots = append(hots, hot{r, n})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].n != hots[j].n {
			return hots[i].n > hots[j].n
		}
		return hots[i].row < hots[j].row
	})
	fmt.Println("hottest write rows:")
	for i := 0; i < len(hots) && i < 5; i++ {
		loc := mapper.Map(hots[i].row * rowBytes)
		fmt.Printf("  row %-10d %6d writes  (%s)\n", hots[i].row, hots[i].n, loc)
	}

	// Rank balance.
	var maxLoad, minLoad uint64
	minLoad = ^uint64(0)
	for _, n := range rankLoad {
		if n > maxLoad {
			maxLoad = n
		}
		if n < minLoad {
			minLoad = n
		}
	}
	fmt.Printf("rank balance       min %d / max %d accesses per rank (×%.2f skew)\n",
		minLoad, maxLoad, skew(maxLoad, minLoad))
	return nil
}

func skew(max, min uint64) float64 {
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}
