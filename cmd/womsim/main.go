// Command womsim regenerates the paper's evaluation (Li and Mohanram,
// "Write-Once-Memory-Code Phase Change Memory", DATE 2014): Fig. 5(a)/(b)
// normalized write/read latencies of the four architectures, Fig. 6
// WOM-cache hit rates, Fig. 7 WCPCM bank scaling, and the repository's
// ablation experiments. Every experiment comes from the shared registry in
// internal/sim — the same registry cmd/womd serves as a job API.
//
// Usage:
//
//	womsim -fig fig5         # Fig. 5(a)+(b) across all 20 benchmarks
//	womsim -fig fig6 -requests 100000
//	womsim -fig all -bench 464.h264ref,qsort
//	womsim -fig rth          # refresh-threshold ablation
//	womsim -fig sched,hybrid # comparator ablations ([7], [18])
//	womsim -list             # list registry experiments
//	womsim -detail ocean     # per-run service breakdown + energy pricing
//	womsim -trace my.trace   # replay a recorded trace on every architecture
//	womsim -timeline t.json -bench qsort    # Perfetto/chrome://tracing timeline
//	womsim -series s.json -bench qsort      # epoch-windowed telemetry series
//	womsim -series s.json -series-window 50us  # 50 µs simulated windows
//	womsim -cache out/cache -fig fig5   # memoize: rerunning is a disk read
//	womsim -cache out/cache -fig fig5 -force  # re-simulate and overwrite
//	womsim -fig fig5 -cpuprofile cpu.pprof -memprofile heap.pprof  # host profiling
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"womcpcm/internal/core"
	"womcpcm/internal/energy"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sim"
	"womcpcm/internal/stats"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "fig5", "comma-separated registry experiments (see -list), or \"all\"")
		requests = flag.Int("requests", 200000, "trace length per benchmark")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		bench    = flag.String("bench", "", "comma-separated benchmark filter (default all 20)")
		suite    = flag.String("suite", "", "suite filter: SPEC, MiBench, SPLASH-2")
		ranks    = flag.Int("ranks", 0, "override rank count")
		banks    = flag.Int("banks", 0, "override banks per rank")
		detail   = flag.String("detail", "", "print the full run summary for one benchmark on every architecture")
		timeline = flag.String("timeline", "", "write a Chrome trace-event timeline (Perfetto/chrome://tracing) of one benchmark on every architecture to this file")
		timeLim  = flag.Int("timeline-limit", 250000, "with -timeline: cap events kept per architecture (0 = unlimited)")
		series   = flag.String("series", "", "write an epoch-windowed telemetry series (womtool report input) of one benchmark on every architecture to this file")
		seriesW  = flag.Duration("series-window", time.Duration(telemetry.DefaultWindowNs), "with -series: simulated-time window width")
		traceIn  = flag.String("trace", "", "replay a trace file (text or binary) through every architecture")
		workers  = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
		list     = flag.Bool("list", false, "list the experiment registry and exit")
		cacheDir = flag.String("cache", "", "result-store directory; rerunning an identical figure reads it instead of simulating")
		force    = flag.Bool("force", false, "with -cache: re-simulate and overwrite stored results")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU pprof profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap pprof profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The write happens in this deferred hook so every exit path below
		// (figures, replay, timeline, series) is covered.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "womsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "womsim:", err)
			}
		}()
	}

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	params := sim.Params{
		Requests:    *requests,
		Seed:        *seed,
		Suite:       *suite,
		Ranks:       *ranks,
		Banks:       *banks,
		Parallelism: *workers,
	}
	if *bench != "" {
		params.Bench = strings.Split(*bench, ",")
	}

	if *traceIn != "" {
		if err := replayTrace(params, *traceIn); err != nil {
			fatal(err)
		}
		return
	}
	if *timeline != "" {
		if err := runTimeline(params, *timeline, *timeLim); err != nil {
			fatal(err)
		}
		return
	}
	if *series != "" {
		if err := runSeries(params, *series, *seriesW); err != nil {
			fatal(err)
		}
		return
	}
	if *detail != "" {
		if err := printDetail(params, *detail); err != nil {
			fatal(err)
		}
		return
	}

	var store *resultstore.Store
	if *cacheDir != "" {
		var err error
		store, err = resultstore.Open(*cacheDir, resultstore.Options{})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	names := strings.Split(*fig, ",")
	if strings.TrimSpace(*fig) == "all" {
		names = []string{"fig5", "fig6", "fig7", "rth", "org", "pausing", "code", "sched", "hybrid", "channels"}
	}
	for _, name := range names {
		exp, err := sim.LookupExperiment(name)
		if err != nil {
			fatal(err)
		}
		res, err := runCached(store, exp, params, *force)
		if err != nil {
			fatal(err)
		}
		if err := emit(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
}

// runCached consults the result store before simulating: a hit is a disk
// read, a miss (or -force) runs the experiment and persists the result.
func runCached(store *resultstore.Store, exp sim.Experiment, params sim.Params, force bool) (*sim.Result, error) {
	if store == nil || !resultstore.Cacheable(exp, params) {
		return exp.Run(context.Background(), params)
	}
	key, err := resultstore.KeyForParams(exp.Name, params, store.SchemaVersion())
	if err != nil {
		return nil, err
	}
	if !force {
		if entry, ok := store.Get(key); ok {
			fmt.Fprintf(os.Stderr, "womsim: %s served from cache %s (key %.12s…)\n",
				exp.Name, store.Dir(), key)
			return entry.Result, nil
		}
	}
	start := time.Now()
	res, err := exp.Run(context.Background(), params)
	if err != nil {
		return nil, err
	}
	doc, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	canon, err := resultstore.CanonicalJSON(doc)
	if err != nil {
		return nil, err
	}
	if err := store.Put(resultstore.Entry{
		Key:        key,
		Experiment: exp.Name,
		Params:     canon,
		Result:     res,
		WallNs:     time.Since(start).Nanoseconds(),
	}); err != nil {
		// A broken cache must not cost the freshly computed result.
		fmt.Fprintf(os.Stderr, "womsim: warning: caching %s failed: %v\n", exp.Name, err)
	}
	return res, nil
}

// emit renders a result as its table or as JSON.
func emit(jsonOut bool, res *sim.Result) error {
	if !jsonOut {
		fmt.Print(res.Text)
		fmt.Println()
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": res.Experiment, "result": res.Data})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "womsim:", err)
	os.Exit(1)
}

func printDetail(params sim.Params, bench string) error {
	p, err := workload.ProfileByName(bench)
	if err != nil {
		return err
	}
	cfg, err := params.Config(context.Background())
	if err != nil {
		return err
	}
	var runs []*stats.Run
	for _, a := range core.Arches() {
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		sys, err := core.NewSystem(a, opts)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(p, cfg.Geometry, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := sys.Simulate(traceLimit(gen, cfg.Requests))
		if err != nil {
			return err
		}
		run.Workload = p.Name
		runs = append(runs, run)
		fmt.Print(run.Summary())
		fmt.Println()
	}
	table, err := energy.Compare(energy.Default(), runs)
	if err != nil {
		return err
	}
	fmt.Println("energy (internal/energy default pricing; §3.2 refresh = read + row write):")
	fmt.Print(table)
	return nil
}
