// Command womsim regenerates the paper's evaluation (Li and Mohanram,
// "Write-Once-Memory-Code Phase Change Memory", DATE 2014): Fig. 5(a)/(b)
// normalized write/read latencies of the four architectures, Fig. 6
// WOM-cache hit rates, Fig. 7 WCPCM bank scaling, and the repository's
// ablation experiments.
//
// Usage:
//
//	womsim -fig 5            # Fig. 5(a)+(b) across all 20 benchmarks
//	womsim -fig 6 -requests 100000
//	womsim -fig all -bench 464.h264ref,qsort
//	womsim -fig rth          # refresh-threshold ablation
//	womsim -fig sched,hybrid # comparator ablations ([7], [18])
//	womsim -detail ocean     # per-run service breakdown + energy pricing
//	womsim -trace my.trace   # replay a recorded trace on every architecture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"womcpcm/internal/core"
	"womcpcm/internal/energy"
	"womcpcm/internal/pcm"
	"womcpcm/internal/sim"
	"womcpcm/internal/stats"
	"womcpcm/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "5", "experiment: 5, 5a, 5b, 6, 7, rth, org, pausing, code, sched, hybrid, channels, all")
		requests = flag.Int("requests", 200000, "trace length per benchmark")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		bench    = flag.String("bench", "", "comma-separated benchmark filter (default all 20)")
		suite    = flag.String("suite", "", "suite filter: SPEC, MiBench, SPLASH-2")
		ranks    = flag.Int("ranks", 0, "override rank count")
		banks    = flag.Int("banks", 0, "override banks per rank")
		detail   = flag.String("detail", "", "print the full run summary for one benchmark on every architecture")
		traceIn  = flag.String("trace", "", "replay a trace file (text or binary) through every architecture")
		workers  = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	cfg := sim.ExpConfig{
		Requests:    *requests,
		Seed:        *seed,
		Parallelism: *workers,
	}
	g := pcm.DefaultGeometry()
	if *ranks > 0 {
		g.Ranks = *ranks
	}
	if *banks > 0 {
		g.BanksPerRank = *banks
	}
	cfg.Geometry = g

	profiles, err := selectProfiles(*bench, *suite)
	if err != nil {
		fatal(err)
	}
	cfg.Profiles = profiles

	if *traceIn != "" {
		if err := replayTrace(cfg, *traceIn, *requests); err != nil {
			fatal(err)
		}
		return
	}
	if *detail != "" {
		if err := printDetail(cfg, *detail); err != nil {
			fatal(err)
		}
		return
	}

	for _, f := range strings.Split(*fig, ",") {
		if err := runFig(cfg, strings.TrimSpace(f), *jsonOut); err != nil {
			fatal(err)
		}
	}
}

// emit renders a result as JSON or with its table renderer.
func emit(jsonOut bool, name string, res interface{}, render func() string) error {
	if !jsonOut {
		fmt.Print(render())
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{"experiment": name, "result": res})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "womsim:", err)
	os.Exit(1)
}

func selectProfiles(bench, suite string) ([]workload.Profile, error) {
	if bench == "" && suite == "" {
		return workload.Profiles(), nil
	}
	if bench != "" {
		var out []workload.Profile
		for _, name := range strings.Split(bench, ",") {
			p, err := workload.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	var s workload.Suite
	switch strings.ToLower(suite) {
	case "spec":
		s = workload.SPEC
	case "mibench":
		s = workload.MiB
	case "splash-2", "splash2", "splash":
		s = workload.SPLASH
	default:
		return nil, fmt.Errorf("unknown suite %q", suite)
	}
	return workload.SuiteProfiles(s), nil
}

func runFig(cfg sim.ExpConfig, fig string, jsonOut bool) error {
	switch fig {
	case "5", "5a", "5b":
		res, err := sim.Fig5(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "fig5", res, func() string { return sim.RenderFig5(res) })
	case "6":
		res, err := sim.Fig6(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "fig6", res, func() string { return sim.RenderFig6(res) })
	case "7":
		res, err := sim.Fig7(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "fig7", res, func() string { return sim.RenderFig7(res) })
	case "rth":
		res, err := sim.RthSweep(cfg, []float64{0, 5, 10, 25, 50, 75})
		if err != nil {
			return err
		}
		return emit(jsonOut, "rth", res, func() string { return sim.RenderRthSweep(res) })
	case "org":
		res, err := sim.OrgAblation(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "org", res, func() string { return sim.RenderOrgAblation(res) })
	case "pausing":
		res, err := sim.PausingAblation(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "pausing", res, func() string { return sim.RenderPausingAblation(res) })
	case "code":
		res, err := sim.CodeAblation(cfg, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		return emit(jsonOut, "code", res, func() string { return sim.RenderCodeAblation(res) })
	case "sched":
		res, err := sim.SchedulingAblation(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "sched", res, func() string { return sim.RenderSchedulingAblation(res) })
	case "hybrid":
		res, err := sim.HybridAblation(cfg)
		if err != nil {
			return err
		}
		return emit(jsonOut, "hybrid", res, func() string { return sim.RenderHybridAblation(res) })
	case "channels":
		res, err := sim.ChannelScaling(cfg, []int{1, 2, 4})
		if err != nil {
			return err
		}
		return emit(jsonOut, "channels", res, func() string { return sim.RenderChannelScaling(res) })
	case "all":
		for _, f := range []string{"5", "6", "7", "rth", "org", "pausing", "code", "sched", "hybrid", "channels"} {
			if err := runFig(cfg, f, jsonOut); err != nil {
				return err
			}
			if !jsonOut {
				fmt.Println()
			}
		}
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func printDetail(cfg sim.ExpConfig, bench string) error {
	p, err := workload.ProfileByName(bench)
	if err != nil {
		return err
	}
	var runs []*stats.Run
	for _, a := range core.Arches() {
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		sys, err := core.NewSystem(a, opts)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(p, cfg.Geometry, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := sys.Simulate(traceLimit(gen, cfg.Requests))
		if err != nil {
			return err
		}
		run.Workload = p.Name
		runs = append(runs, run)
		fmt.Print(run.Summary())
		fmt.Println()
	}
	table, err := energy.Compare(energy.Default(), runs)
	if err != nil {
		return err
	}
	fmt.Println("energy (internal/energy default pricing; §3.2 refresh = read + row write):")
	fmt.Print(table)
	return nil
}
