package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/sim"
	"womcpcm/internal/telemetry"
)

// TestRunSeriesEndToEnd runs womsim's -series path over a seed workload and
// validates the acceptance contract: one JSON document carrying the windowed
// series of all four architectures under the published schema.
func TestRunSeriesEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.json")
	params := sim.Params{Requests: 30000, Seed: 1, Bench: []string{"qsort"}}
	const window = 50 * time.Microsecond
	if err := runSeries(params, path, window); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc telemetry.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("series is not valid document JSON: %v", err)
	}
	if doc.Schema != telemetry.SchemaVersion {
		t.Errorf("schema = %q, want %q", doc.Schema, telemetry.SchemaVersion)
	}
	if doc.Workload != "qsort" {
		t.Errorf("workload = %q, want qsort", doc.Workload)
	}
	if doc.WindowNs != window.Nanoseconds() {
		t.Errorf("window = %d ns, want %d", doc.WindowNs, window.Nanoseconds())
	}

	arches := make(map[string]bool)
	for _, s := range doc.Series {
		arches[s.Arch] = true
		if s.WindowNs != window.Nanoseconds() {
			t.Errorf("%s: series window = %d, want %d", s.Arch, s.WindowNs, window.Nanoseconds())
		}
		if len(s.Windows) == 0 {
			t.Errorf("%s: no windows", s.Arch)
		}
		if s.Totals().Total() == 0 {
			t.Errorf("%s: no writes recorded", s.Arch)
		}
		for i, w := range s.Windows {
			if w.Index != int64(i) {
				t.Fatalf("%s: window %d has index %d (series must be dense)", s.Arch, i, w.Index)
			}
		}
	}
	for _, want := range []string{"PCM w/o WOM-code", "WOM-code PCM", "PCM-refresh", "WCPCM"} {
		if !arches[want] {
			t.Errorf("document is missing architecture %q (have %v)", want, arches)
		}
	}
	if len(doc.Series) != 4 {
		t.Errorf("document carries %d series, want 4", len(doc.Series))
	}

	// The document must render: this is the womtool report pipeline.
	var html strings.Builder
	if err := telemetry.WriteHTMLReport(&html, &doc); err != nil {
		t.Fatalf("rendering report from series document: %v", err)
	}
	for _, s := range doc.Series {
		if !strings.Contains(html.String(), s.Arch) {
			t.Errorf("report does not mention architecture %q", s.Arch)
		}
	}
}
