package main

import (
	"context"
	"fmt"
	"os"

	"womcpcm/internal/sim"
	"womcpcm/internal/trace"
)

// replayTrace runs a trace file through all four architectures via the
// registry's replay experiment and prints each run's summary plus the
// normalized comparison.
func replayTrace(params sim.Params, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	recs, err := trace.CollectLimit(trace.NewAutoReader(f), 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	params.Trace = recs
	params.TraceLabel = path
	exp, err := sim.LookupExperiment("replay")
	if err != nil {
		return err
	}
	res, err := exp.Run(context.Background(), params)
	if err != nil {
		return err
	}
	replay := res.Data.(*sim.ReplayResult)
	for _, run := range replay.Runs {
		fmt.Print(run.Summary())
		fmt.Println()
	}
	fmt.Print(res.Text)
	return nil
}
