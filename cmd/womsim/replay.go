package main

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"womcpcm/internal/core"
	"womcpcm/internal/sim"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// openTrace opens a trace file, sniffing the binary magic and falling back
// to the text format.
func openTrace(path string) (trace.Source, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, err
	}
	if len(head) == 4 && string(head) == "WOMT" {
		return trace.NewBinReader(br), f.Close, nil
	}
	return trace.NewTextReader(br), f.Close, nil
}

// replayTrace runs a trace file through all four architectures and prints
// each run's summary plus the normalized comparison.
func replayTrace(cfg sim.ExpConfig, path string, limit int) error {
	var base *stats.Run
	for _, arch := range core.Arches() {
		src, closer, err := openTrace(path)
		if err != nil {
			return err
		}
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		sys, err := core.NewSystem(arch, opts)
		if err != nil {
			closer()
			return err
		}
		bounded := src
		if limit > 0 {
			bounded = trace.NewLimit(src, limit)
		}
		run, err := sys.Simulate(bounded)
		if cerr := closer(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("replaying %s on %s: %w", path, arch, err)
		}
		run.Workload = path
		if arch == core.Baseline {
			base = run
		}
		w, r := run.Normalized(base)
		fmt.Print(run.Summary())
		fmt.Printf("  normalized: write %.3f, read %.3f\n\n", w, r)
	}
	return nil
}
