package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"womcpcm/internal/core"
	"womcpcm/internal/probe"
	"womcpcm/internal/sim"
	"womcpcm/internal/workload"
)

// runTimeline replays one benchmark workload on all four architectures with
// the simulator probe attached and writes a merged Chrome trace-event
// timeline: one trace process per architecture, one track per bank (plus a
// rank-wide track for the WOM-cache array and refresh scheduling), refresh
// and busy intervals as slices. The file opens directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
func runTimeline(params sim.Params, path string, limit int) error {
	cfg, err := params.Config(context.Background())
	if err != nil {
		return err
	}
	p := cfg.Profiles[0]
	if len(cfg.Profiles) > 1 {
		fmt.Fprintf(os.Stderr, "womsim: -timeline instruments one benchmark; using %s (narrow with -bench)\n", p.Name)
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 200000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	arches := core.Arches()
	sinks := make([]*probe.TimelineSink, len(arches))
	for i, a := range arches {
		sinks[i] = probe.NewTimelineSink(i+1, a.String(), limit)
		counters := probe.NewCounterSink()
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		opts.Probe = probe.New(counters, sinks[i])
		sys, err := core.NewSystem(a, opts)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(p, cfg.Geometry, seed)
		if err != nil {
			return err
		}
		run, err := sys.Simulate(traceLimit(gen, requests))
		if err != nil {
			return fmt.Errorf("timeline: %s on %s: %w", p.Name, a, err)
		}
		fmt.Fprintf(os.Stderr, "womsim: %-16s %d events (%d dropped), %d requests, %.2f ms simulated\n",
			a.String(), sinks[i].Len(), sinks[i].Dropped(), requests, float64(run.SimulatedNs)/1e6)
		if counts := counters.Counts(); len(counts) > 0 {
			kinds := make([]string, 0, len(counts))
			for k := range counts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				fmt.Fprintf(os.Stderr, "womsim:   %-20s %d\n", k, counts[k])
			}
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = probe.WriteChromeTrace(f, sinks...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("timeline: writing %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "womsim: timeline written to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", path)
	return nil
}
