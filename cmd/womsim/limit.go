package main

import "womcpcm/internal/trace"

// traceLimit bounds a generator stream to n records.
func traceLimit(src trace.Source, n int) trace.Source {
	return trace.NewLimit(src, n)
}
