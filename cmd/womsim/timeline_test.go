package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"womcpcm/internal/probe"
	"womcpcm/internal/sim"
)

// timelineParams is a seed workload small enough for a unit test but busy
// enough that every write class and a refresh pause/resume episode occur
// (qsort's tight zipf footprint drives rows to the rewrite limit quickly).
func timelineParams() sim.Params {
	return sim.Params{Requests: 30000, Seed: 1, Bench: []string{"qsort"}}
}

// TestRunTimelineEndToEnd runs womsim's -timeline path over a seed workload
// and validates the acceptance contract: the file unmarshals into the Chrome
// trace-event schema and contains all four write-class event types plus
// refresh pause/resume spans.
func TestRunTimelineEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.json")
	if err := runTimeline(timelineParams(), path, 0); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr probe.ChromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("timeline is not valid trace-event JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}

	names := make(map[string]int)
	procs := make(map[int]bool)
	for _, ev := range tr.TraceEvents {
		procs[ev.Pid] = true
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("unknown metadata event %q", ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				t.Fatalf("metadata event missing args.name: %+v", ev)
			}
		case "X":
			names[ev.Name]++
			if ev.Dur < 0 {
				t.Fatalf("negative span duration: %+v", ev)
			}
		case "i":
			names[ev.Name]++
			if ev.Scope != "t" {
				t.Fatalf("instant event scope = %q, want t: %+v", ev.Scope, ev)
			}
		default:
			t.Fatalf("unexpected phase %q in %+v", ev.Ph, ev)
		}
	}
	if len(procs) != 4 {
		t.Errorf("trace covers %d architectures, want 4", len(procs))
	}
	for _, want := range []string{
		"write-first", "write-wom-rewrite", "write-alpha", "write-flip-n-write",
		"refresh-paused", "refresh-resumed",
	} {
		if names[want] == 0 {
			t.Errorf("timeline contains no %q events (have %v)", want, names)
		}
	}
}

// TestRunTimelineLimit checks -timeline-limit bounds the kept events per
// architecture while the run itself still completes.
func TestRunTimelineLimit(t *testing.T) {
	const limit = 500
	path := filepath.Join(t.TempDir(), "timeline.json")
	if err := runTimeline(timelineParams(), path, limit); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr probe.ChromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	perPid := make(map[int]int)
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "M" {
			perPid[ev.Pid]++
		}
	}
	if len(perPid) != 4 {
		t.Fatalf("trace covers %d architectures, want 4", len(perPid))
	}
	for pid, n := range perPid {
		if n > limit {
			t.Errorf("architecture %d kept %d events, want ≤ %d", pid, n, limit)
		}
	}
}
