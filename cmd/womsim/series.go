package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"womcpcm/internal/core"
	"womcpcm/internal/probe"
	"womcpcm/internal/sim"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/workload"
)

// runSeries replays one benchmark workload on all four architectures with a
// telemetry collector attached and writes the windowed time series of every
// architecture into a single JSON document — the input of `womtool report`.
func runSeries(params sim.Params, path string, window time.Duration) error {
	cfg, err := params.Config(context.Background())
	if err != nil {
		return err
	}
	p := cfg.Profiles[0]
	if len(cfg.Profiles) > 1 {
		fmt.Fprintf(os.Stderr, "womsim: -series instruments one benchmark; using %s (narrow with -bench)\n", p.Name)
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 200000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	windowNs := window.Nanoseconds()
	if windowNs <= 0 {
		windowNs = telemetry.DefaultWindowNs
	}

	doc := telemetry.Document{
		Schema:   telemetry.SchemaVersion,
		Workload: p.Name,
		Requests: requests,
		Seed:     seed,
		WindowNs: windowNs,
	}
	for _, a := range core.Arches() {
		banks := cfg.Geometry.Ranks * cfg.Geometry.BanksPerRank
		if a == core.WCPCM {
			banks += cfg.Geometry.Ranks
		}
		col := telemetry.New(telemetry.Options{WindowNs: windowNs, Banks: banks})
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		opts.Probe = probe.New(col)
		opts.Latency = col.ObserveLatency
		sys, err := core.NewSystem(a, opts)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(p, cfg.Geometry, seed)
		if err != nil {
			return err
		}
		run, err := sys.Simulate(traceLimit(gen, requests))
		if err != nil {
			return fmt.Errorf("series: %s on %s: %w", p.Name, a, err)
		}
		s := col.Finish(a.String(), run.SimulatedNs)
		doc.Series = append(doc.Series, *s)
		fmt.Fprintf(os.Stderr, "womsim: %-16s %d windows of %s, %.2f ms simulated, %d writes\n",
			a.String(), len(s.Windows), window, float64(run.SimulatedNs)/1e6, s.Totals().Total())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(&doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("series: writing %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "womsim: series written to %s (render with: womtool report %s -o report.html)\n", path, path)
	return nil
}
