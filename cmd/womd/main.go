// Command womd is the simulation service daemon: it serves the experiment
// registry (internal/sim) over an HTTP/JSON API, executing jobs on a
// bounded worker pool with admission control, per-job timeouts, service
// metrics, and graceful drain on SIGTERM/SIGINT.
//
// With -cache DIR the daemon memoizes results in a persistent
// content-addressed store (internal/resultstore): resubmitting an identical
// job is a disk read instead of a simulation, concurrent identical jobs
// share one execution, and /v1/results, /v1/baselines, and /v1/compare
// expose the cache, pinned baselines, and regression reports.
//
// Logs are structured (log/slog): every HTTP request gets an id — honoring
// a client-supplied X-Request-ID — that follows its job through queued,
// started, and finished lines, so one grep reconstructs a request's whole
// lifecycle. -debug additionally mounts net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	womd -addr :8080 -workers 4 -queue 64 -timeout 10m -cache /var/lib/womd
//
// Quickstart:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"experiment":"fig5","params":{"requests":20000,"bench":["qsort"]}}'
//	curl -s localhost:8080/v1/jobs/j-000001/result
//	curl -s localhost:8080/v1/jobs/j-000001/progress
//	curl -s localhost:8080/metrics
//
// See DESIGN.md for the API surface and job lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/resultstore"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "job queue depth; full queue returns HTTP 429")
		timeout    = flag.Duration("timeout", 15*time.Minute, "default per-job timeout (0 = none)")
		drain      = flag.Duration("drain", 2*time.Minute, "graceful drain budget on shutdown")
		maxRecords = flag.Int("max-trace-records", 4<<20, "per-upload trace record cap")
		maxTraces  = flag.Int("max-traces", 64, "stored upload cap")
		cacheDir   = flag.String("cache", "", "result-store directory; identical jobs are served from it (empty = caching off)")
		cacheSync  = flag.Bool("cache-sync", false, "fsync the result store after every append")
		debug      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of logfmt-style text")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	var store *resultstore.Store
	if *cacheDir != "" {
		var err error
		store, err = resultstore.Open(*cacheDir, resultstore.Options{Sync: *cacheSync})
		if err != nil {
			logger.Error("opening result store", "dir", *cacheDir, "error", err)
			os.Exit(1)
		}
		defer store.Close()
		logger.Info("result store open", "dir", *cacheDir,
			"results", store.Len(), "baselines", len(store.Baselines()))
	}

	mgr := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *timeout,
		MaxTraceRecords: *maxRecords,
		MaxTraces:       *maxTraces,
		Store:           store,
		Logger:          logger,
	})
	opts := []engine.ServerOption{engine.WithLogger(logger)}
	if *debug {
		opts = append(opts, engine.WithDebug())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:        *addr,
		Handler:     engine.NewServer(mgr, opts...),
		ReadTimeout: 5 * time.Minute, // trace uploads can be large
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// in-flight jobs complete within the drain budget. The before/after
	// metrics delta reports how many jobs the drain actually finished.
	before := mgr.Metrics().Snapshot()
	logger.Info("signal received; draining", "budget", drain.String(),
		"jobs_running", before.JobsRunning, "queue_depth", before.QueueDepth)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	drainErr := mgr.Shutdown(drainCtx)
	after := mgr.Metrics().Snapshot()
	logger.Info("drain finished",
		"jobs_completed", after.JobsCompleted-before.JobsCompleted,
		"jobs_failed", after.JobsFailed-before.JobsFailed,
		"jobs_canceled", after.JobsCanceled-before.JobsCanceled,
		"uptime_s", int64(after.UptimeSeconds))
	if drainErr != nil {
		if errors.Is(drainErr, context.DeadlineExceeded) {
			logger.Error("drain budget exceeded; running jobs aborted")
			os.Exit(1)
		}
		logger.Error("drain", "error", drainErr)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
