// Command womd is the simulation service daemon: it serves the experiment
// registry (internal/sim) over an HTTP/JSON API, executing jobs on a
// bounded worker pool with admission control, per-job timeouts, service
// metrics, and graceful drain on SIGTERM/SIGINT.
//
// With -cache DIR the daemon memoizes results in a persistent
// content-addressed store (internal/resultstore): resubmitting an identical
// job is a disk read instead of a simulation, concurrent identical jobs
// share one execution, and /v1/results, /v1/baselines, and /v1/compare
// expose the cache, pinned baselines, and regression reports.
//
// With -tenants FILE the daemon replaces its FIFO queue with a multi-tenant
// SLO scheduler (internal/sched): weighted-fair dequeue across tenant
// classes, earliest-deadline-first within one, and graduated load shedding
// whose 429s carry a Retry-After computed from the observed drain rate.
// GET /v1/tenants shows live per-tenant state, womd_tenant_* families
// appear on /metrics, and SIGHUP re-reads the file without dropping queued
// work.
//
// Performance observability is on by default: every job carries a host-time
// perf record (wall clock, simulated events/sec, allocation, CPU) surfaced
// in its JobView and as womd_job_* histograms on /metrics, and a
// runtime/metrics poller exports womd_runtime_* families (-runtime-metrics
// interval, 0 disables; -no-perf disables per-job accounting). With
// -profile-dir DIR a monitor goroutine captures CPU+heap pprof profiles
// from jobs that fall behind the fleet or near their deadline, served under
// /v1/jobs/{id}/profiles.
//
// Logs are structured (log/slog): every HTTP request gets an id — honoring
// a client-supplied X-Request-ID — that follows its job through queued,
// started, and finished lines, so one grep reconstructs a request's whole
// lifecycle. -debug additionally mounts net/http/pprof under /debug/pprof/.
//
// Distributed tracing is on by default: every job starts (or, given a
// client traceparent header, continues) a W3C trace whose spans — admission,
// queue wait, dispatch, worker execution, result store, SSE fan-out — land
// in a bounded in-process buffer (-trace-spans capacity, -trace-sample head
// sampling). GET /v1/jobs/{id}/trace serves a job's merged trace as Chrome
// trace-event JSON (openable in Perfetto, rendered by `womtool spans`); in a
// cluster the workers ship their spans back so the coordinator's endpoint
// shows the whole cross-process timeline. A coordinator additionally
// federates its workers' /metrics into womd_fleet_* families (instance
// label per worker, -cluster-federate interval) and summarizes fleet load
// on GET /v1/fleet.
//
// An SLO/health alerting engine (-alerts, on by default) continuously
// evaluates error-budget burn-rate rules over the scheduler's windowed
// attainment, plus structural rules: queue saturation, shed rate, stale
// worker heartbeats, federation scrape failures, and slow-job capture
// frequency. Alerts move pending → firing → resolved with flap damping,
// carry exemplar trace ids linking into /v1/jobs/{id}/trace, and surface
// on GET /v1/alerts and as womd_alert_* families on /metrics; -alert-rules
// FILE replaces the built-in rules and is hot-reloaded on SIGHUP without
// losing firing state. GET /readyz reports routing readiness — 503 while
// draining or queue-saturated — and in a cluster each worker's readiness
// rides its heartbeats so the coordinator routes around not-ready workers.
//
// Metric history is on by default (-history): an embedded TSDB self-scrapes
// the process's full /metrics exposition every -history-scrape interval
// into Gorilla-compressed chunks, downsamples them through retention tiers
// (-history-retention, default raw 5s for 1h, 1m buckets for 24h, 10m for
// 7d) that preserve min/max/sum/count and reset-aware counter increase,
// and serves range queries on GET /v1/query_range (+ /v1/series
// discovery). With -history-dir DIR sealed chunks, aggregate buckets, and
// every alert lifecycle transition persist to a CRC32-framed segment log:
// after a restart, dashboards keep their past, GET /v1/alerts/history
// still shows the journal, burn-rate windows are backfilled from the
// persisted counters, and journaled firing alerts are reinstalled instead
// of silently dropped. `womtool graph` and `womtool top` render this
// history as inline-SVG dashboards and sparklines.
//
// The daemon also runs distributed (-role): a coordinator keeps this whole
// API but dispatches jobs to registered workers over the /cluster/v1/ RPC
// surface (internal/cluster), and a worker joins a coordinator's fleet,
// executing dispatched jobs on its local pool and streaming events back.
// -role standalone (the default) is the unchanged single-process path.
//
// Usage:
//
//	womd -addr :8080 -workers 4 -queue 64 -timeout 10m -cache /var/lib/womd
//
// Cluster (see README "Running a cluster"):
//
//	womd -role coordinator -addr :8080
//	womd -role worker -addr :8081 -coordinator http://127.0.0.1:8080
//
// Quickstart:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"experiment":"fig5","params":{"requests":20000,"bench":["qsort"]}}'
//	curl -s localhost:8080/v1/jobs/j-000001/result
//	curl -s localhost:8080/v1/jobs/j-000001/progress
//	curl -s localhost:8080/metrics
//
// See DESIGN.md for the API surface and job lifecycle.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"womcpcm/internal/cluster"
	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/perfmon"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sched"
	"womcpcm/internal/span"
	"womcpcm/internal/tsdb"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "job queue depth; full queue returns HTTP 429")
		tenants    = flag.String("tenants", "", "tenant scheduling config (JSON); enables multi-tenant SLO scheduling, hot-reloaded on SIGHUP")
		timeout    = flag.Duration("timeout", 15*time.Minute, "default per-job timeout (0 = none)")
		drain      = flag.Duration("drain", 2*time.Minute, "graceful drain budget on shutdown")
		maxRecords = flag.Int("max-trace-records", 4<<20, "per-upload trace record cap")
		maxTraces  = flag.Int("max-traces", 64, "stored upload cap")
		cacheDir   = flag.String("cache", "", "result-store directory; identical jobs are served from it (empty = caching off)")
		cacheSync  = flag.Bool("cache-sync", false, "fsync the result store after every append")
		debug      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of logfmt-style text")
		noPerf     = flag.Bool("no-perf", false, "disable per-job host-time accounting (womd_job_events_per_second and friends)")
		pollEvery  = flag.Duration("runtime-metrics", perfmon.DefaultPollInterval, "runtime/metrics poll interval for womd_runtime_* gauges (0 = off)")
		profileDir = flag.String("profile-dir", "", "directory for automatic slow-job pprof captures (empty = off)")
		profileMax = flag.Int("profile-max", perfmon.DefaultMaxCaptures, "retained profile capture cap; oldest evicted past it")
		slowFrac   = flag.Float64("slow-fraction", 0.25, "profile a job whose rolling events/sec falls below this fraction of the fleet median")
		deadFrac   = flag.Float64("deadline-fraction", 0.9, "profile a job that has consumed this fraction of its timeout")
		monEvery   = flag.Duration("monitor-interval", 15*time.Second, "slow-job monitor pass interval")

		traceSpans  = flag.Int("trace-spans", 4096, "span buffer capacity for distributed job tracing (0 disables tracing)")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of traces recorded, decided once per trace at its head (0 records nothing; ids are still issued)")

		alerts     = flag.Bool("alerts", true, "run the SLO/health alerting engine (GET /v1/alerts, womd_alert_* metrics)")
		alertRules = flag.String("alert-rules", "", "alert rules config (JSON); empty = built-in defaults, hot-reloaded on SIGHUP")

		history       = flag.Bool("history", true, "run the embedded metrics history store (GET /v1/query_range, /v1/series, /v1/alerts/history)")
		historyDir    = flag.String("history-dir", "", "history segment-log directory; empty keeps history in memory only (lost on restart)")
		historyScrape = flag.Duration("history-scrape", 5*time.Second, "history self-scrape interval")
		historyRet    = flag.String("history-retention", "", `history retention tiers as step=retention pairs, e.g. "raw=1h,1m=24h,10m=168h" (empty = built-in defaults)`)

		role         = flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
		coordURL     = flag.String("coordinator", "", "coordinator base URL (worker role)")
		advertise    = flag.String("advertise", "", "this worker's base URL as seen from the coordinator (worker role; default derived from -addr)")
		clusterName  = flag.String("cluster-name", "", "worker display name in the fleet view (default the advertise URL)")
		clusterBeat  = flag.Duration("cluster-heartbeat", 5*time.Second, "worker heartbeat interval")
		evictAfter   = flag.Duration("cluster-evict-after", 15*time.Second, "heartbeat silence before a worker is evicted and its jobs requeued")
		dispatchWait = flag.Duration("cluster-dispatch-wait", 2*time.Second, "how long a job waits for a worker to register before running locally")
		rebalance    = flag.Duration("cluster-rebalance", 10*time.Second, "work-stealing rebalance pass interval")
		stealMargin  = flag.Int("cluster-steal-margin", 2, "pending jobs above the fleet average before queued work is stolen back")
		fedEvery     = flag.Duration("cluster-federate", 0, "fleet /metrics federation scrape interval (coordinator role; 0 = 2×heartbeat, negative disables)")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	var store *resultstore.Store
	if *cacheDir != "" {
		var err error
		store, err = resultstore.Open(*cacheDir, resultstore.Options{Sync: *cacheSync})
		if err != nil {
			logger.Error("opening result store", "dir", *cacheDir, "error", err)
			os.Exit(1)
		}
		defer store.Close()
		logger.Info("result store open", "dir", *cacheDir,
			"results", store.Len(), "baselines", len(store.Baselines()))
	}

	var profiles *perfmon.ProfileStore
	if *profileDir != "" {
		var err error
		profiles, err = perfmon.NewProfileStore(*profileDir, *profileMax)
		if err != nil {
			logger.Error("opening profile store", "dir", *profileDir, "error", err)
			os.Exit(1)
		}
		logger.Info("slow-job profiling enabled", "dir", *profileDir,
			"slow_fraction", *slowFrac, "deadline_fraction", *deadFrac)
	}

	// Embedded metrics history: a self-scraped TSDB with retention tiers
	// plus the persisted alert-transition journal. Opened before the engine
	// so the job hot path can thread its (possibly nil) pointer through.
	var histDB *tsdb.DB
	if *history {
		var tiers []tsdb.TierSpec
		if *historyRet != "" {
			var err error
			if tiers, err = tsdb.ParseTiers(*historyRet); err != nil {
				logger.Error("parsing -history-retention", "spec", *historyRet, "error", err)
				os.Exit(2)
			}
		}
		var err error
		histDB, err = tsdb.Open(tsdb.Options{
			Dir:            *historyDir,
			ScrapeInterval: *historyScrape,
			Tiers:          tiers,
			Logger:         logger,
		})
		if err != nil {
			logger.Error("opening metrics history", "dir", *historyDir, "error", err)
			os.Exit(1)
		}
		defer histDB.Close()
		logger.Info("metrics history enabled", "dir", *historyDir,
			"scrape", historyScrape.String(), "retention", *historyRet)
	}

	// Distributed tracing: one span recorder per process, shared by the
	// engine (job lifecycle spans), the coordinator (dispatch spans, worker
	// span merging), and the worker agent (span shipping). The service name
	// labels which process recorded each span in a merged trace.
	var tracer *span.Recorder
	if *traceSpans > 0 {
		service := "womd"
		switch *role {
		case "coordinator":
			service = "coordinator"
		case "worker":
			service = *clusterName
			if service == "" {
				service = "worker"
			}
		}
		rate := *traceSample
		if rate == 0 {
			rate = -1 // flag 0 = record nothing (span.Config treats 0 as "everything")
		}
		tracer = span.New(span.Config{Service: service, Capacity: *traceSpans, SampleRate: rate})
		logger.Info("tracing enabled", "service", service,
			"buffer", *traceSpans, "sample", *traceSample)
	}

	// Cluster roles: the coordinator installs its dispatcher as the engine's
	// Execute hook (built first, manager attached after); a worker runs a
	// plain local engine plus the agent that joins the coordinator's fleet.
	var coord *cluster.Coordinator
	switch *role {
	case "standalone", "worker":
	case "coordinator":
		coord = cluster.NewCoordinator(cluster.Config{
			Heartbeat:    *clusterBeat,
			EvictAfter:   *evictAfter,
			DispatchWait: *dispatchWait,
			Rebalance:    *rebalance,
			StealMargin:  *stealMargin,
			Logger:       logger,
			Tracer:       tracer,
			Federate:     *fedEvery,
		})
	default:
		logger.Error("unknown -role; want standalone, coordinator, or worker", "role", *role)
		os.Exit(2)
	}

	cfg := engine.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxTraceRecords:  *maxRecords,
		MaxTraces:        *maxTraces,
		Store:            store,
		Logger:           logger,
		DisablePerf:      *noPerf,
		Profiles:         profiles,
		SlowFraction:     *slowFrac,
		DeadlineFraction: *deadFrac,
		MonitorInterval:  *monEvery,
		Tracer:           tracer,
		History:          histDB,
	}
	if coord != nil {
		cfg.Execute = coord.Execute
	}
	// Alerting exemplars must be wired before the engine is built so job
	// settles feed them; the health engine itself comes after the
	// coordinator and scheduler exist, since its signals read both.
	var exemplars *health.Exemplars
	if *alerts {
		exemplars = health.NewExemplars()
		cfg.Exemplars = exemplars
	}
	// Multi-tenant SLO scheduling: replace the FIFO queue with the
	// weighted-fair scheduler and hot-reload its config on SIGHUP.
	var scheduler *sched.Scheduler
	if *tenants != "" {
		scfg, err := sched.LoadConfig(*tenants)
		if err != nil {
			logger.Error("loading tenant config", "path", *tenants, "error", err)
			os.Exit(1)
		}
		scheduler = sched.New(scfg)
		cfg.Queue = engine.NewTenantQueue(scheduler)
		logger.Info("multi-tenant scheduling enabled", "path", *tenants,
			"tenants", len(scfg.Tenants), "default_tenant", scfg.DefaultTenant,
			"max_depth", scfg.MaxDepth)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				scfg, err := sched.LoadConfig(*tenants)
				if err != nil {
					logger.Error("tenant config reload failed; keeping previous config",
						"path", *tenants, "error", err)
					continue
				}
				if err := scheduler.Reload(scfg); err != nil {
					logger.Error("tenant config reload rejected; keeping previous config",
						"path", *tenants, "error", err)
					continue
				}
				logger.Info("tenant config reloaded", "path", *tenants,
					"tenants", len(scfg.Tenants), "default_tenant", scfg.DefaultTenant)
			}
		}()
	}
	mgr := engine.New(cfg)
	if coord != nil {
		coord.AttachManager(mgr)
		coord.Start()
		logger.Info("coordinator role active", "heartbeat", clusterBeat.String(),
			"evict_after", evictAfter.String())
	}

	var agent *cluster.Agent
	if *role == "worker" {
		if *coordURL == "" {
			logger.Error("-role worker requires -coordinator URL")
			os.Exit(2)
		}
		adv := *advertise
		if adv == "" {
			host, port, err := net.SplitHostPort(*addr)
			if err != nil || port == "" {
				logger.Error("cannot derive -advertise from -addr; pass -advertise explicitly", "addr", *addr)
				os.Exit(2)
			}
			if host == "" || host == "::" || host == "0.0.0.0" {
				host = "127.0.0.1"
			}
			adv = "http://" + net.JoinHostPort(host, port)
		}
		capacity := *workers
		if capacity <= 0 {
			capacity = runtime.GOMAXPROCS(0)
		}
		agent = cluster.NewAgent(cluster.AgentConfig{
			Coordinator: *coordURL,
			Advertise:   adv,
			Name:        *clusterName,
			Capacity:    capacity,
			Heartbeat:   *clusterBeat,
			Logger:      logger,
			Tracer:      tracer,
		}, mgr)
		if err := agent.Start(); err != nil {
			// Not fatal: the heartbeat loop keeps retrying, so workers may
			// start before their coordinator.
			logger.Warn("initial registration failed; will retry", "error", err.Error())
		}
	}

	// SLO/health alerting: continuous rule evaluation over whichever signal
	// planes this process has (engine queue always; scheduler tenants,
	// fleet heartbeats, and federation when configured). GET /v1/alerts
	// serves the alert set, womd_alert_* families land on /metrics, and
	// SIGHUP re-reads -alert-rules without dropping firing state.
	var alertEngine *health.Engine
	if *alerts {
		rules := health.DefaultRules()
		if *alertRules != "" {
			var err error
			rules, err = health.LoadRules(*alertRules)
			if err != nil {
				logger.Error("loading alert rules", "path", *alertRules, "error", err)
				os.Exit(1)
			}
		}
		sig := health.Signals{
			Queue: func() (health.QueueStat, bool) {
				r := mgr.Readiness(0)
				return health.QueueStat{
					Depth:    r.QueueDepth,
					Cap:      r.QueueCap,
					Rejected: mgr.Metrics().Rejected.Load(),
					Draining: r.Draining,
				}, true
			},
			SlowCaptures: func() (uint64, bool) {
				return mgr.Metrics().ProfilesCaptured.Load(), true
			},
		}
		if scheduler != nil {
			sig.Tenants = func() []health.TenantStat {
				views := scheduler.Views()
				out := make([]health.TenantStat, 0, len(views))
				for _, v := range views {
					out = append(out, health.TenantStat{
						Name: v.Name, Depth: v.Depth,
						Sheds: v.Sheds, DeadlineMs: v.DeadlineMs,
					})
				}
				return out
			}
			sig.TenantSLO = scheduler.WindowSLO
		}
		if coord != nil {
			sig.Workers = coord.HealthWorkers
			sig.ScrapeErrors = func() (uint64, bool) { return coord.FederationErrors(), true }
		}
		hcfg := health.Config{
			Rules:     rules,
			Signals:   sig,
			Exemplars: exemplars,
			Logger:    logger,
		}
		if histDB != nil {
			// Journal every lifecycle transition so alert state survives a
			// restart (GET /v1/alerts/history).
			hcfg.OnTransition = func(at time.Time, to, key string, v health.AlertView) {
				b, err := json.Marshal(v)
				if err != nil {
					return
				}
				histDB.AppendAlertTransition(at, to, key, b)
			}
		}
		var err error
		alertEngine, err = health.NewEngine(hcfg)
		if err != nil {
			logger.Error("building alert engine", "error", err)
			os.Exit(1)
		}
		if histDB != nil {
			// Warm the burn-rate windows from persisted counter history and
			// reinstall journaled active alerts before the first evaluation
			// pass, so a restart neither drops firing incidents nor waits a
			// full SLO window to notice them again.
			if scheduler != nil {
				backfillSLO(scheduler, histDB, logger)
			}
			if active := histDB.ActiveAlerts(); len(active) > 0 {
				views := make([]health.AlertView, 0, len(active))
				for _, tr := range active {
					var v health.AlertView
					if err := json.Unmarshal(tr.Alert, &v); err == nil {
						views = append(views, v)
					}
				}
				n := alertEngine.Restore(views)
				logger.Info("alert state restored from history",
					"journaled", len(active), "restored", n)
			}
		}
		alertEngine.Start()
		defer alertEngine.Stop()
		logger.Info("alerting enabled", "rules", len(rules.Rules),
			"interval", rules.Interval().String(), "rules_path", *alertRules)
		if *alertRules != "" {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					rules, err := health.LoadRules(*alertRules)
					if err != nil {
						logger.Error("alert rules reload failed; keeping previous rules",
							"path", *alertRules, "error", err)
						continue
					}
					if err := alertEngine.Reload(rules); err != nil {
						logger.Error("alert rules reload rejected; keeping previous rules",
							"path", *alertRules, "error", err)
						continue
					}
					logger.Info("alert rules reloaded", "path", *alertRules,
						"rules", len(rules.Rules))
				}
			}()
		}
	}

	opts := []engine.ServerOption{engine.WithLogger(logger)}
	if alertEngine != nil {
		opts = append(opts,
			engine.WithAlerts(alertEngine),
			engine.WithPromAppender(alertEngine.WriteProm))
	}
	if tracer != nil {
		opts = append(opts, engine.WithPromAppender(tracer.WriteProm))
	}
	if coord != nil {
		opts = append(opts, engine.WithPromAppender(coord.WriteProm))
	}
	if scheduler != nil {
		opts = append(opts, engine.WithPromAppender(scheduler.WriteProm))
	}
	if histDB != nil {
		opts = append(opts,
			engine.WithHistory(histDB),
			engine.WithPromAppender(histDB.WriteProm))
	}
	if *debug {
		opts = append(opts, engine.WithDebug())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	if *pollEvery > 0 {
		poller := perfmon.NewPoller(*pollEvery)
		poller.Start()
		defer poller.Stop()
		opts = append(opts, engine.WithRuntimeMetrics(poller))
	}
	apiServer := engine.NewServer(mgr, opts...)
	// The scrape source is the server's own full exposition — service
	// counters plus every registered appender (cluster, fleet federation,
	// alerts, the history store's own gauges) — so everything /metrics
	// shows is also everything history records.
	histDB.Start(apiServer.WriteProm)
	var httpHandler http.Handler = apiServer
	if coord != nil || agent != nil {
		mux := http.NewServeMux()
		if coord != nil {
			mux.Handle("/cluster/v1/", coord.Handler())
			mux.HandleFunc("GET /v1/fleet", coord.HandleFleet)
		} else {
			mux.Handle("/cluster/v1/", agent.Handler())
		}
		mux.Handle("/", httpHandler)
		httpHandler = mux
	}
	srv := &http.Server{
		Addr:        *addr,
		Handler:     httpHandler,
		ReadTimeout: 5 * time.Minute, // trace uploads can be large
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// in-flight jobs complete within the drain budget. The before/after
	// metrics delta reports how many jobs the drain actually finished.
	before := mgr.Metrics().Snapshot()
	logger.Info("signal received; draining", "budget", drain.String(),
		"jobs_running", before.JobsRunning, "queue_depth", before.QueueDepth)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	var drainErr error
	if agent != nil {
		// Worker order matters: announce the drain (coordinator stops
		// routing here and steals queued jobs), finish running jobs while
		// the HTTP listener stays up so their event streams complete, then
		// close the listener and the heartbeat loop.
		agent.BeginDrain()
		drainErr = mgr.Shutdown(drainCtx)
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		agent.Stop()
	} else {
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		drainErr = mgr.Shutdown(drainCtx)
		if coord != nil {
			coord.Stop()
		}
	}
	after := mgr.Metrics().Snapshot()
	logger.Info("drain finished",
		"jobs_completed", after.JobsCompleted-before.JobsCompleted,
		"jobs_failed", after.JobsFailed-before.JobsFailed,
		"jobs_canceled", after.JobsCanceled-before.JobsCanceled,
		"uptime_s", int64(after.UptimeSeconds))
	if drainErr != nil {
		// os.Exit skips the deferred close; an aborted drain must not
		// also cost the metric history its unflushed tail.
		if err := histDB.Close(); err != nil {
			logger.Warn("history close", "error", err)
		}
		if errors.Is(drainErr, context.DeadlineExceeded) {
			logger.Error("drain budget exceeded; running jobs aborted")
			os.Exit(1)
		}
		logger.Error("drain", "error", drainErr)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// backfillSLO warms the scheduler's per-tenant SLO rings from persisted
// counter history: the per-scrape increases of womd_tenant_slo_met_total
// and womd_tenant_dequeued_total over the ring horizon become seeded
// window buckets, so burn-rate rules evaluate real attainment on the
// first pass after a restart instead of a vacuous empty window.
func backfillSLO(s *sched.Scheduler, db *tsdb.DB, logger *slog.Logger) {
	const horizon = 34 * time.Minute // ≥ the ring's 2048-second reach
	now := time.Now()
	from, to := now.Add(-horizon).UnixMilli(), now.UnixMilli()
	seeded := 0
	for _, info := range db.Series("womd_tenant_slo_met_total") {
		tenant := info.Labels["tenant"]
		if tenant == "" {
			continue
		}
		match := map[string]string{"tenant": tenant}
		met := counterDeltas(db.RawSamples("womd_tenant_slo_met_total", match, from, to))
		total := counterDeltas(db.RawSamples("womd_tenant_dequeued_total", match, from, to))
		for sec, tot := range total {
			m := met[sec]
			if m > tot {
				m = tot
			}
			if s.SeedSLO(tenant, sec, m, tot) {
				seeded++
			}
		}
	}
	if seeded > 0 {
		logger.Info("slo windows backfilled from history", "buckets", seeded)
	}
}

// counterDeltas turns raw cumulative-counter samples into per-second
// increases attributed to the later sample's second; a reset contributes
// the post-reset value, mirroring the history store's own Inc rule.
func counterDeltas(pts []tsdb.Point) map[int64]uint64 {
	out := make(map[int64]uint64, len(pts))
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			d = pts[i].V
		}
		if d <= 0 {
			continue
		}
		out[pts[i].T/1000] += uint64(d + 0.5)
	}
	return out
}
