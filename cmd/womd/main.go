// Command womd is the simulation service daemon: it serves the experiment
// registry (internal/sim) over an HTTP/JSON API, executing jobs on a
// bounded worker pool with admission control, per-job timeouts, service
// metrics, and graceful drain on SIGTERM/SIGINT.
//
// With -cache DIR the daemon memoizes results in a persistent
// content-addressed store (internal/resultstore): resubmitting an identical
// job is a disk read instead of a simulation, concurrent identical jobs
// share one execution, and /v1/results, /v1/baselines, and /v1/compare
// expose the cache, pinned baselines, and regression reports.
//
// Usage:
//
//	womd -addr :8080 -workers 4 -queue 64 -timeout 10m -cache /var/lib/womd
//
// Quickstart:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"experiment":"fig5","params":{"requests":20000,"bench":["qsort"]}}'
//	curl -s localhost:8080/v1/jobs/j-000001/result
//	curl -s localhost:8080/metrics
//
// See DESIGN.md for the API surface and job lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/resultstore"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "job queue depth; full queue returns HTTP 429")
		timeout    = flag.Duration("timeout", 15*time.Minute, "default per-job timeout (0 = none)")
		drain      = flag.Duration("drain", 2*time.Minute, "graceful drain budget on shutdown")
		maxRecords = flag.Int("max-trace-records", 4<<20, "per-upload trace record cap")
		maxTraces  = flag.Int("max-traces", 64, "stored upload cap")
		cacheDir   = flag.String("cache", "", "result-store directory; identical jobs are served from it (empty = caching off)")
		cacheSync  = flag.Bool("cache-sync", false, "fsync the result store after every append")
	)
	flag.Parse()

	var store *resultstore.Store
	if *cacheDir != "" {
		var err error
		store, err = resultstore.Open(*cacheDir, resultstore.Options{Sync: *cacheSync})
		if err != nil {
			log.Fatalf("womd: opening result store: %v", err)
		}
		defer store.Close()
		log.Printf("womd: result store %s: %d results, %d baselines",
			*cacheDir, store.Len(), len(store.Baselines()))
	}

	mgr := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *timeout,
		MaxTraceRecords: *maxRecords,
		MaxTraces:       *maxTraces,
		Store:           store,
	})
	srv := &http.Server{
		Addr:        *addr,
		Handler:     engine.NewServer(mgr),
		ReadTimeout: 5 * time.Minute, // trace uploads can be large
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("womd: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("womd: serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// in-flight jobs complete within the drain budget.
	log.Printf("womd: signal received; draining (budget %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("womd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "womd: drain budget exceeded; running jobs aborted")
			os.Exit(1)
		}
		log.Fatalf("womd: drain: %v", err)
	}
	log.Printf("womd: drained cleanly")
}
