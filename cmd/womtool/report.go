package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"womcpcm/internal/telemetry"
)

// report renders a womsim -series document (or a womd replay result saved in
// the same schema) as a self-contained HTML page: womtool report s.json -o
// report.html.
func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("o", "report.html", "output HTML file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: womtool report <series.json> [-o report.html]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	// Accept flags after the positional too (report s.json -o out.html):
	// flag.Parse stops at the first non-flag argument.
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc telemetry.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	if doc.Schema != telemetry.SchemaVersion {
		fatal(fmt.Errorf("%s: schema %q, want %q (regenerate with womsim -series)",
			path, doc.Schema, telemetry.SchemaVersion))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	err = telemetry.WriteHTMLReport(f, &doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(fmt.Errorf("writing %s: %w", *out, err))
	}
	fmt.Fprintf(os.Stderr, "womtool: report written to %s (%d architectures, %s windows)\n",
		*out, len(doc.Series), fmtWindow(doc.WindowNs))
}

// fmtWindow prints a window width in the most natural simulated-time unit.
func fmtWindow(ns int64) string {
	switch {
	case ns >= 1e6 && ns%1e6 == 0:
		return fmt.Sprintf("%d ms", ns/1e6)
	case ns >= 1e3 && ns%1e3 == 0:
		return fmt.Sprintf("%d µs", ns/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}
