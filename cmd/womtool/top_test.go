package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/cluster"
	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/sched"
)

// fakeOpsServer serves canned /readyz, /v1/fleet, /v1/tenants, /v1/alerts
// payloads — the coordinator surface `womtool top` polls.
func fakeOpsServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	write := func(w http.ResponseWriter, status int, body string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body)) //nolint:errcheck
	}
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusServiceUnavailable,
			`{"ready":false,"reason":"queue saturated (58 of 64)","draining":false,"queue_depth":58,"queue_cap":64}`)
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusOK, `{
			"workers":[
				{"id":"w-001","name":"alpha","addr":"http://a","capacity":2,"heartbeat_age_ms":120,"ready":true,"queue_depth":3,"running":2,"completed":41},
				{"id":"w-002","name":"beta","addr":"http://b","capacity":2,"heartbeat_age_ms":90,"ready":false,"queue_depth":9,"running":2,"completed":17}
			],
			"totals":{"workers":2,"queue_depth":12,"running":4,"completed":58,"failed":1},
			"federation":{"instances":2,"scrape_errors":3,"last_scrape_age_ms":200}}`)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusOK, `{"tenants":[
			{"name":"interactive","depth":7,"inflight":2,"sheds":5,"slo_attainment_1m":0.91,"slo_attainment_5m":0.97,"slo_attainment_30m":0.99},
			{"name":"batch","depth":5,"inflight":2,"sheds":0,"slo_attainment_1m":1,"slo_attainment_5m":1,"slo_attainment_30m":1}]}`)
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusOK, `{
			"alerts":[{"id":"al-000001","rule":"slo-burn-fast","subject":"interactive","severity":"page",
				"state":"firing","value":2.1,"threshold":1.5,"started_at":"2026-08-07T10:00:00Z",
				"annotations":{"exemplar_trace":"4bf92f3577b34da6a3ce929d0e0e4736","exemplar_job":"j-000042"}}],
			"counts":{"firing":1}}`)
	})
	return httptest.NewServer(mux)
}

func TestTopPollAndRender(t *testing.T) {
	ts := fakeOpsServer(t)
	defer ts.Close()

	snap := pollTop(&http.Client{Timeout: 5 * time.Second}, ts.URL)
	if len(snap.Errs) != 0 {
		t.Fatalf("poll errors: %v", snap.Errs)
	}
	var out strings.Builder
	renderTop(&out, snap)
	frame := out.String()
	for _, want := range []string{
		"NOT READY (queue saturated (58 of 64))",
		"queue 58/64",
		"ALERTS  firing 1",
		"FIRING   slo-burn-fast",
		"trace 4bf92f3577b34da6a3ce929d0e0e4736",
		"FLEET   2 workers (1 ready)",
		"w-002  beta             NOT READY",
		"scrape_errors 3",
		"interactive    depth 7",
		"slo 1m 0.910",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "(alerting not enabled)") {
		t.Errorf("alerting is enabled on the fake; frame says otherwise:\n%s", frame)
	}

	// A healthy daemon serves an empty alert list ("alerts": null); that is
	// enabled-and-quiet, not disabled.
	quiet := snap
	quiet.Alerts, quiet.Counts = nil, nil
	var quietOut strings.Builder
	renderTop(&quietOut, quiet)
	if strings.Contains(quietOut.String(), "(alerting not enabled)") {
		t.Errorf("empty alert list rendered as disabled:\n%s", quietOut.String())
	}

	var page strings.Builder
	renderTopHTML(&page, snap, 2*time.Second)
	if !strings.Contains(page.String(), `http-equiv="refresh" content="2"`) {
		t.Errorf("html frame missing refresh meta:\n%s", page.String())
	}
	if !strings.Contains(page.String(), "slo-burn-fast") {
		t.Error("html frame missing alert content")
	}
}

// TestTopDegradesGracefully: a plain standalone womd (no fleet, no tenants,
// no alerts) still renders a frame instead of erroring out.
func TestTopDegradesGracefully(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ready":true,"draining":false,"queue_depth":0,"queue_cap":64}`)) //nolint:errcheck
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"not implemented"}`, http.StatusNotImplemented)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	snap := pollTop(&http.Client{Timeout: 5 * time.Second}, ts.URL)
	if len(snap.Errs) != 0 {
		t.Fatalf("poll errors: %v", snap.Errs)
	}
	if snap.Fleet != nil || snap.Tenants != nil || snap.Alerts != nil {
		t.Fatalf("501 sections should be absent: %+v", snap)
	}
	var out strings.Builder
	renderTop(&out, snap)
	if !strings.Contains(out.String(), "(alerting not enabled)") {
		t.Errorf("frame missing alerting-disabled note:\n%s", out.String())
	}
}

// Compile-time pin: the dashboard decodes into the server-side view types,
// so a drifting field would fail here rather than silently render zeros.
var (
	_ = cluster.FleetView{}
	_ = sched.TenantView{}
	_ = health.AlertView{}
	_ = engine.Readiness{}
)
