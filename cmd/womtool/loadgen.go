package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"womcpcm/internal/loadgen"
)

// loadgenCmd drives `womtool loadgen`: an open-loop load run against a womd
// instance, emitting the womcpcm-loadgen-v1 report and optionally asserting
// SLO attainment and shed distribution for CI gates.
func loadgenCmd(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of the womd instance under load")
	mixPath := fs.String("mix", "", "mix file: duration, arrival process, tenant shares (required)")
	out := fs.String("o", "", "write the JSON report here (default stdout)")
	duration := fs.Float64("duration", 0, "override the mix duration_s")
	seed := fs.Int64("seed", -1, "override the mix arrival seed (-1 keeps the mix value)")
	poll := fs.Duration("poll", 25*time.Millisecond, "job status poll interval")
	drain := fs.Duration("drain", 60*time.Second, "wait this long after the last arrival for admitted jobs to finish")
	quiet := fs.Bool("q", false, "suppress progress output")
	assertSLO := fs.String("assert-slo", "",
		"comma-separated tenants whose queue-wait SLO (mix slo_ms) must be attained; exit 1 otherwise")
	assertShed := fs.String("assert-shed-share", "",
		"tenant=fraction: the tenant must absorb at least this fraction of all sheds (vacuous when nothing shed); exit 1 otherwise")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *mixPath == "" {
		fmt.Fprintln(os.Stderr, "womtool loadgen: -mix is required")
		fs.Usage()
		os.Exit(2)
	}
	mix, err := loadgen.LoadMix(*mixPath)
	if err != nil {
		fatal(err)
	}
	if *duration > 0 {
		mix.DurationS = *duration
	}
	if *seed >= 0 {
		mix.Arrival.Seed = *seed
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:      *url,
		Mix:          mix,
		PollInterval: *poll,
		DrainTimeout: *drain,
		Logf:         logf,
	})
	if err != nil {
		fatal(err)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc) //nolint:errcheck // stdout
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}

	failed := false
	for _, name := range splitList(*assertSLO) {
		t := rep.Tenant(name)
		switch {
		case t == nil:
			fmt.Fprintf(os.Stderr, "womtool loadgen: assert-slo: tenant %q not in mix\n", name)
			failed = true
		case t.SLOAttained == nil:
			fmt.Fprintf(os.Stderr, "womtool loadgen: assert-slo: tenant %q has no slo_ms in the mix\n", name)
			failed = true
		case !*t.SLOAttained:
			fmt.Fprintf(os.Stderr,
				"womtool loadgen: SLO MISSED: tenant %q p95 queue wait %.1fms > target %.1fms (completed %d)\n",
				name, t.QueueWaitMs.P95, t.SLOMs, t.Completed)
			failed = true
		default:
			fmt.Fprintf(os.Stderr,
				"womtool loadgen: SLO ok: tenant %q p95 queue wait %.1fms ≤ %.1fms\n",
				name, t.QueueWaitMs.P95, t.SLOMs)
		}
	}
	if *assertShed != "" {
		name, fracStr, ok := strings.Cut(*assertShed, "=")
		frac, perr := strconv.ParseFloat(fracStr, 64)
		if !ok || perr != nil || frac < 0 || frac > 1 {
			fmt.Fprintf(os.Stderr, "womtool loadgen: bad -assert-shed-share %q (want tenant=0.9)\n", *assertShed)
			os.Exit(2)
		}
		if got := rep.ShedShare(name); got < frac {
			fmt.Fprintf(os.Stderr,
				"womtool loadgen: SHED SHARE MISSED: tenant %q absorbed %.0f%% of %d sheds, want ≥ %.0f%%\n",
				name, got*100, rep.Shed, frac*100)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "womtool loadgen: shed share ok: tenant %q absorbed %.0f%% of %d sheds\n",
				name, got*100, rep.Shed)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
