package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"os"
	"sort"
	"strings"

	"womcpcm/internal/probe"
)

// spansCmd renders a distributed job trace — the Chrome trace-event JSON
// served by GET /v1/jobs/{id}/trace — as a self-contained HTML waterfall:
//
//	curl -s localhost:8080/v1/jobs/j-000001/trace > trace.json
//	womtool spans trace.json -o trace.html
//
// The same file opens in Perfetto (ui.perfetto.dev); the waterfall is the
// dependency-free view for CI artifacts and quick looks.
func spansCmd(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	out := fs.String("o", "spans.html", "output HTML file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: womtool spans <trace.json> [-o spans.html]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	// Accept flags after the positional too (spans t.json -o out.html).
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var tr probe.ChromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}

	services := make(map[int]string) // pid → process_name metadata
	var slices []probe.ChromeEvent
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			if name, ok := ev.Args["name"].(string); ok {
				services[ev.Pid] = name
			}
		case ev.Ph == "X":
			slices = append(slices, ev)
		}
	}
	if len(slices) == 0 {
		fatal(fmt.Errorf("%s: no spans to render (job sampled out, or not a trace-event file)", path))
	}
	sort.SliceStable(slices, func(i, j int) bool {
		if slices[i].Ts != slices[j].Ts {
			return slices[i].Ts < slices[j].Ts
		}
		return slices[i].Dur > slices[j].Dur // parents before children at a shared start
	})
	total := 0.0
	for _, ev := range slices {
		if end := ev.Ts + ev.Dur; end > total {
			total = end
		}
	}
	if total <= 0 {
		total = 1
	}

	traceID := ""
	if v, ok := slices[0].Args["trace_id"].(string); ok {
		traceID = v
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<!doctype html><html><head><meta charset="utf-8">
<title>womd trace %s</title>
<style>
body{font:13px/1.5 -apple-system,Segoe UI,sans-serif;margin:2em;color:#222}
h1{font-size:1.2em} .meta{color:#666;margin-bottom:1em}
.row{display:flex;align-items:center;height:22px}
.label{flex:0 0 22em;white-space:nowrap;overflow:hidden;text-overflow:ellipsis;padding-right:.6em}
.label .svc{color:#888;font-size:.85em}
.lane{flex:1;position:relative;background:#f5f5f5;height:16px;border-radius:3px}
.bar{position:absolute;top:0;height:16px;border-radius:3px;min-width:2px}
.dur{margin-left:.5em;color:#555;font-variant-numeric:tabular-nums;flex:0 0 7em;text-align:right}
.axis{display:flex;margin-left:22em;color:#999;font-size:.85em;justify-content:space-between}
</style></head><body>
<h1>womd job trace</h1>
`, html.EscapeString(traceID))
	fmt.Fprintf(&b, `<div class="meta">trace %s · %d spans · %d services · %s total</div>`+"\n",
		html.EscapeString(traceID), len(slices), len(services), fmtMicros(total))
	fmt.Fprintf(&b, `<div class="axis"><span>0</span><span>%s</span><span>%s</span></div>`+"\n",
		fmtMicros(total/2), fmtMicros(total))
	for _, ev := range slices {
		svc := services[ev.Pid]
		left := 100 * ev.Ts / total
		width := 100 * ev.Dur / total
		if width < 0.15 {
			width = 0.15 // keep micro-spans visible
		}
		title, _ := json.Marshal(ev.Args)
		fmt.Fprintf(&b,
			`<div class="row"><div class="label">%s <span class="svc">%s</span></div>`+
				`<div class="lane"><div class="bar" style="left:%.3f%%;width:%.3f%%;background:%s" title="%s"></div></div>`+
				`<div class="dur">%s</div></div>`+"\n",
			html.EscapeString(ev.Name), html.EscapeString(svc),
			left, width, spanColor(ev.Pid, ev.Name),
			html.EscapeString(string(title)), fmtMicros(ev.Dur))
	}
	b.WriteString("</body></html>\n")

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(fmt.Errorf("writing %s: %w", *out, err))
	}
	fmt.Fprintf(os.Stderr, "womtool: waterfall written to %s (%d spans, %d services, %s)\n",
		*out, len(slices), len(services), fmtMicros(total))
}

// spanColor assigns a stable hue per service with the span name nudging
// lightness, so one service's spans read as one family.
func spanColor(pid int, name string) string {
	h := (pid * 137) % 360
	l := 45 + int(fnvMod(name, 20))
	return fmt.Sprintf("hsl(%d,65%%,%d%%)", h, l)
}

// fnvMod hashes s into [0, m) — enough spread for color variation.
func fnvMod(s string, m uint64) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h % m
}

// fmtMicros prints a µs quantity in its most natural unit.
func fmtMicros(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2f s", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2f ms", us/1e3)
	default:
		return fmt.Sprintf("%.0f µs", us)
	}
}
