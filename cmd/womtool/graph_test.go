package main

import (
	"strings"
	"testing"
	"time"

	"womcpcm/internal/tsdb"
)

func TestSparkBars(t *testing.T) {
	got := sparkBars([]float64{0, 1, 4, 8})
	want := "▁▁▄█"
	if got != want {
		t.Fatalf("sparkBars = %q, want %q", got, want)
	}
	if got := sparkBars([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkBars = %q, want flat", got)
	}
	if got := sparkBars(nil); got != "" {
		t.Fatalf("empty sparkBars = %q", got)
	}
}

func TestRenderTopHistorySection(t *testing.T) {
	snap := topSnapshot{
		At: time.Unix(1_700_000_000, 0),
		Sparks: []sparkline{
			{Label: "jobs/s", Unit: "jobs/s", Points: []float64{1, 2, 8}},
		},
	}
	var b strings.Builder
	renderTop(&b, snap)
	out := b.String()
	if !strings.Contains(out, "HISTORY (10m)") {
		t.Fatalf("frame missing history section:\n%s", out)
	}
	if !strings.Contains(out, "jobs/s") || !strings.Contains(out, "█") {
		t.Fatalf("frame missing sparkline row:\n%s", out)
	}
	// Without history the section is absent, not empty.
	var plain strings.Builder
	renderTop(&plain, topSnapshot{At: snap.At})
	if strings.Contains(plain.String(), "HISTORY") {
		t.Fatalf("history section rendered without data:\n%s", plain.String())
	}
}

func TestRenderGraphHTML(t *testing.T) {
	base := time.UnixMilli(1_700_000_000_000)
	charts := []graphChart{{
		Metric: "womd_jobs_completed_total",
		Agg:    "rate",
		StepMs: 30_000,
		Series: []tsdb.SeriesResult{
			{
				Metric: "womd_jobs_completed_total",
				Labels: map[string]string{"tenant": "alpha"},
				TierMs: 0,
				Points: []tsdb.Point{
					{T: base.UnixMilli(), V: 1},
					{T: base.Add(30 * time.Second).UnixMilli(), V: 4},
					{T: base.Add(time.Minute).UnixMilli(), V: 2},
				},
			},
			{
				Metric: "womd_jobs_completed_total",
				Labels: map[string]string{"tenant": "<batch>"},
				TierMs: 0,
				Points: []tsdb.Point{
					{T: base.UnixMilli(), V: 3},
					{T: base.Add(time.Minute).UnixMilli(), V: 5},
				},
			},
		},
	}}
	var b strings.Builder
	renderGraphHTML(&b, "http://localhost:8080", base.Add(-time.Hour), base.Add(time.Minute),
		charts, []string{"womd_fleet_jobs_completed_total"})
	out := b.String()
	for _, want := range []string{
		"<svg", "<polyline", "womd_jobs_completed_total",
		"tenant=alpha", "agg=rate",
		"tenant=&lt;batch&gt;", // label values are HTML-escaped
		"No data: womd_fleet_jobs_completed_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Fatalf("polylines = %d, want 2 (one per labelset)", n)
	}
	// An empty chart set still renders a valid document.
	var empty strings.Builder
	renderGraphHTML(&empty, "http://x", base, base, nil, nil)
	if !strings.Contains(empty.String(), "No data in the queried window") {
		t.Fatalf("empty dashboard:\n%s", empty.String())
	}
}
