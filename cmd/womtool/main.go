// Command womtool inspects the WOM-codes of the reproduction: it prints the
// paper's Table 1 (in both orientations), verifies the WOM property of the
// shipped codes, encodes/decodes example write sequences, reports the
// §3.2 analytic bound for a given rewrite budget, and runs regression
// checks over a result-store cache (womsim -cache / womd -cache).
//
// Usage:
//
//	womtool table            # print Table 1 and its inverted form
//	womtool verify           # exhaustively verify all shipped codes
//	womtool encode 01 11     # walk a write sequence through inv<2^2>^2/3
//	womtool bound 2 8        # (k-1+S)/(kS) for k = 2 and 8
//	womtool search 2 5       # construct and certify a 2-bit code over 5 wits
//	womtool regress -dir out/cache pin v1          # pin current results
//	womtool regress -dir out/cache -tol 0.02 report v1  # per-metric deltas
//	womtool regress -dir out/cache list            # pinned baselines
//	womtool bench                                  # standardized host-time suite → BENCH_<n>.json
//	womtool bench -compare BENCH_1.json -tol 0.25  # diff against a pinned report
//	womtool report series.json -o report.html      # render womsim -series output
//	womtool loadgen -mix mix.json -o report.json   # open-loop load run against womd
//	womtool spans trace.json -o trace.html         # render a womd job trace waterfall
//	womtool top -url http://localhost:8080         # live ops dashboard: alerts, fleet, tenants
//	womtool graph -url http://localhost:8080 -o graphs.html  # metric-history dashboard (inline SVG)
package main

import (
	"fmt"
	"os"
	"strconv"

	"womcpcm/internal/pcm"
	"womcpcm/internal/womcode"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "table":
		printTable()
	case "verify":
		verifyAll()
	case "encode":
		encodeSequence(os.Args[2:])
	case "bound":
		printBounds(os.Args[2:])
	case "search":
		searchCode(os.Args[2:])
	case "regress":
		regress(os.Args[2:])
	case "bench":
		bench(os.Args[2:])
	case "report":
		report(os.Args[2:])
	case "loadgen":
		loadgenCmd(os.Args[2:])
	case "spans":
		spansCmd(os.Args[2:])
	case "top":
		topCmd(os.Args[2:])
	case "graph":
		graphCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: womtool table | verify | encode <2-bit values...> | bound <k...> | search <dataBits> <wits> | regress [-dir DIR] [-tol F] pin|report|list [name] | bench [-tier short|full] [-compare BASELINE] | report <series.json> [-o report.html] | loadgen -mix MIX [-url URL] [-o REPORT] | spans <trace.json> [-o spans.html] | top [-url URL] [-interval D] [-once] [-html FILE] | graph [-url URL] [-metrics M[:agg],...] [-window D] [-o FILE]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "womtool:", err)
	os.Exit(1)
}

func printTable() {
	conv, inv := womcode.RS223(), womcode.InvRS223()
	fmt.Printf("Table 1: %s WOM-code (Rivest–Shamir) and its PCM-inverted form\n\n", conv.Name())
	fmt.Println("data   first write   second write   inverted first   inverted second")
	for x := uint64(0); x < 4; x++ {
		cf, err := conv.Encode(conv.Initial(), x, 0)
		if err != nil {
			fatal(err)
		}
		// Second-write pattern for a differing value (the table's r').
		var cs uint64
		for y := uint64(0); y < 4; y++ {
			if y == x {
				continue
			}
			from, _ := conv.Encode(conv.Initial(), y, 0)
			cs, err = conv.Encode(from, x, 1)
			if err != nil {
				fatal(err)
			}
			break
		}
		ifirst, err := inv.Encode(inv.Initial(), x, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%02b     %03b           %03b            %03b              %03b\n",
			x, cf, cs, ifirst, ^cs&0b111)
	}
	fmt.Println("\nIn the inverted code wits start at 1 and every in-budget write uses")
	fmt.Println("only fast RESET (1→0) transitions — the paper's §3.1 principle.")
}

func verifyAll() {
	codes := []womcode.Code{
		womcode.RS223(),
		womcode.InvRS223(),
		womcode.XOR(2),
		womcode.XOR(3),
		womcode.Invert(womcode.XOR(3)),
		womcode.Parity(2),
		womcode.Parity(4),
		womcode.Parity(8),
		womcode.Invert(womcode.Parity(4)),
	}
	for _, c := range codes {
		status := "ok"
		if err := womcode.Verify(c); err != nil {
			status = err.Error()
		}
		maxSets := "-"
		if n, err := womcode.MaxSETTransitions(c); err == nil {
			maxSets = strconv.Itoa(n)
		}
		fmt.Printf("%-16s k=%d n=%d t=%d  overhead %.2f  max SETs/write %-3s  %s\n",
			c.Name(), c.DataBits(), c.Wits(), c.Writes(), womcode.Overhead(c), maxSets, status)
	}
}

func encodeSequence(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("encode needs at least one 2-bit value (e.g. 01 11)"))
	}
	c := womcode.InvRS223()
	cur := c.Initial()
	fmt.Printf("code %s, erased state %03b\n", c.Name(), cur)
	for gen, arg := range args {
		v, err := strconv.ParseUint(arg, 2, 2)
		if err != nil {
			fatal(fmt.Errorf("bad 2-bit value %q: %w", arg, err))
		}
		if gen >= c.Writes() {
			fmt.Printf("write %d: value %02b — rewrite limit reached, α-write required\n", gen+1, v)
			cur, err = c.Encode(c.Initial(), v, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  α-write programs %03b (SET + RESET, %d ns class)\n", cur, pcm.DefaultTiming().RowWrite)
			continue
		}
		next, err := c.Encode(cur, v, gen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("write %d: value %02b → pattern %03b (RESET-only, %d ns class), decodes %02b\n",
			gen+1, v, next, pcm.DefaultTiming().Reset, c.Decode(next))
		cur = next
	}
}

func printBounds(args []string) {
	if len(args) == 0 {
		args = []string{"1", "2", "4", "8"}
	}
	t := pcm.DefaultTiming()
	m := womcode.CostModel{ResetLatency: t.Reset, Slowdown: t.Slowdown()}
	fmt.Printf("§3.2 bound (k−1+S)/(kS) with S = %.2f:\n", t.Slowdown())
	for _, a := range args {
		k, err := strconv.Atoi(a)
		if err != nil || k < 1 {
			fatal(fmt.Errorf("bad rewrite budget %q", a))
		}
		b := m.RewriteBound(k)
		fmt.Printf("  k=%-3d normalized write latency ≥ %.4f (≤ %.1f%% reduction)\n", k, b, 100*(1-b))
	}
}

// searchCode constructs a WOM-code by exhaustive search and reports its
// certified guarantee beside the paper's handcrafted code.
func searchCode(args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("search needs <dataBits> <wits>, e.g. search 2 5"))
	}
	k, err := strconv.Atoi(args[0])
	if err != nil {
		fatal(err)
	}
	n, err := strconv.Atoi(args[1])
	if err != nil {
		fatal(err)
	}
	c, err := womcode.Search(k, n)
	if err != nil {
		fatal(err)
	}
	if err := womcode.Verify(c); err != nil {
		fatal(fmt.Errorf("constructed code failed verification: %w", err))
	}
	inv := womcode.Invert(c)
	maxSets, err := womcode.MaxSETTransitions(inv)
	if err != nil {
		fatal(err)
	}
	t := pcm.DefaultTiming()
	m := womcode.CostModel{ResetLatency: t.Reset, Slowdown: t.Slowdown()}
	fmt.Printf("constructed %s: %d-bit data, %d wits, %d guaranteed writes\n",
		c.Name(), c.DataBits(), c.Wits(), c.Writes())
	fmt.Printf("  memory overhead      %.0f%%\n", 100*womcode.Overhead(c))
	fmt.Printf("  inverted max SETs    %d per in-budget write (must be 0)\n", maxSets)
	fmt.Printf("  §3.2 latency bound   %.4f (up to %.1f%% write reduction)\n",
		m.RewriteBound(c.Writes()), 100*(1-m.RewriteBound(c.Writes())))
	if k == 2 && n == 3 {
		fmt.Println("  note: the handcrafted Table 1 code guarantees 2 writes here;")
		fmt.Println("  the generic linear construction cannot match it at n=3.")
	}
	fmt.Println("exhaustive WOM-property verification: ok (both orientations)")
}
