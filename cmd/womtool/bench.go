package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"womcpcm/internal/perfmon"
	"womcpcm/internal/resultstore"
)

// bench drives the standardized host-time benchmark suite:
//
//	womtool bench                          run the short tier, write BENCH_<n>.json
//	womtool bench -tier full -o BENCH.json pick tier and output path
//	womtool bench -compare BENCH_1.json -tol 0.25   run, then diff against a
//	    pinned report; regressions beyond tolerance exit 1
//	womtool bench -compare BENCH_1.json -current BENCH_2.json   diff two
//	    existing reports without running anything
//	womtool bench -compare BENCH_1.json -warn       report but exit 0 (CI)
//
// The matrix is fixed — every architecture × the representative workloads —
// so successive BENCH_<n>.json files at the repo root form a comparable
// performance trajectory. Only host-time metrics (wall_ns, events_per_sec,
// ns_per_event, alloc_bytes, allocs_per_event) participate in comparisons;
// sim-side results ride along for context but belong to womtool regress.
func bench(args []string) {
	os.Exit(benchCmd(args, os.Stdout, os.Stderr))
}

// benchCmd is the testable body: it returns the process exit code instead
// of exiting.
func benchCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tier := fs.String("tier", perfmon.TierShort, "benchmark tier: short or full")
	requests := fs.Int("requests", 0, "override the tier's request count (0 = tier default)")
	seed := fs.Int64("seed", 1, "workload generator seed")
	workloads := fs.String("workloads", "", "comma-separated workload override (default: representative set)")
	out := fs.String("o", "", "output path (default: next BENCH_<n>.json in the current directory)")
	compare := fs.String("compare", "", "baseline BENCH_*.json to diff against")
	current := fs.String("current", "", "existing report to compare instead of running the suite")
	tol := fs.Float64("tol", 0.25, "relative tolerance for -compare (host timings are noisy)")
	warn := fs.Bool("warn", false, "with -compare: report regressions but exit 0")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: womtool bench [-tier short|full] [-requests N] [-seed N] [-workloads a,b] [-o PATH] [-compare BASELINE [-current PATH] [-tol F] [-warn]]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current != "" && *compare == "" {
		fmt.Fprintln(stderr, "womtool: -current only makes sense with -compare")
		return 2
	}

	var report *perfmon.BenchReport
	if *current != "" {
		r, err := perfmon.ReadBenchReport(*current)
		if err != nil {
			fmt.Fprintln(stderr, "womtool:", err)
			return 1
		}
		report = r
		fmt.Fprintf(stdout, "loaded %s: tier %s, %d entries\n", *current, r.Tier, len(r.Entries))
	} else {
		cfg := perfmon.BenchConfig{Tier: *tier, Requests: *requests, Seed: *seed}
		if *workloads != "" {
			cfg.Workloads = strings.Split(*workloads, ",")
		}
		fmt.Fprintf(stdout, "running bench tier %s (%s, GOMAXPROCS %d)...\n",
			*tier, runtime.Version(), runtime.GOMAXPROCS(0))
		r, err := perfmon.RunBench(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "womtool:", err)
			return 1
		}
		report = r
		for _, e := range r.Entries {
			fmt.Fprintf(stdout, "  %-14s %-12s %10.0f events/s  %6.1f ns/event  wall %.3fs\n",
				e.Workload, e.Arch, e.EventsPerSec, e.NsPerEvent, float64(e.WallNs)/1e9)
		}
		path := *out
		if path == "" {
			p, err := perfmon.NextBenchPath(".")
			if err != nil {
				fmt.Fprintln(stderr, "womtool:", err)
				return 1
			}
			path = p
		}
		if err := perfmon.WriteBenchReport(path, report); err != nil {
			fmt.Fprintln(stderr, "womtool:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}

	if *compare == "" {
		return 0
	}
	base, err := perfmon.ReadBenchReport(*compare)
	if err != nil {
		fmt.Fprintln(stderr, "womtool:", err)
		return 1
	}
	cmp, err := perfmon.CompareBench(base, report, *tol)
	if err != nil {
		fmt.Fprintln(stderr, "womtool:", err)
		return 1
	}
	fmt.Fprintf(stdout, "compare vs %s — %d cell(s) checked, tolerance %g\n",
		*compare, cmp.Checked, cmp.Tolerance)
	if len(cmp.Regressions) == 0 {
		fmt.Fprintln(stdout, "ok: no host-time metric moved beyond tolerance")
		return 0
	}
	printBenchRegressions(stdout, cmp)
	if *warn {
		fmt.Fprintln(stdout, "warn-only mode: not failing the run")
		return 0
	}
	return 1
}

// printBenchRegressions groups the deltas per workload/arch cell.
func printBenchRegressions(w io.Writer, cmp *resultstore.Comparison) {
	byKey := make(map[string][]resultstore.Delta)
	var keys []string
	for _, d := range cmp.Regressions {
		if _, ok := byKey[d.Key]; !ok {
			keys = append(keys, d.Key)
		}
		byKey[d.Key] = append(byKey[d.Key], d)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "BENCH REGRESSIONS: %d metric(s) beyond tolerance\n", len(cmp.Regressions))
	for _, key := range keys {
		fmt.Fprintf(w, "  %s:\n", key)
		for _, d := range byKey[key] {
			switch {
			case d.Base == nil:
				fmt.Fprintf(w, "    %-30s new metric, now %.6g\n", d.Metric, *d.Current)
			case d.Current == nil:
				fmt.Fprintf(w, "    %-30s vanished, was %.6g\n", d.Metric, *d.Base)
			default:
				fmt.Fprintf(w, "    %-30s %.6g → %.6g (%+.2f%%)\n",
					d.Metric, *d.Base, *d.Current, 100*(*d.Current-*d.Base)/nonzero(*d.Base))
			}
		}
	}
}
