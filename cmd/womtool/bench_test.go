package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"womcpcm/internal/perfmon"
)

// runBenchCmd invokes the bench subcommand body with captured output.
func runBenchCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = benchCmd(args, &out, &errb)
	return code, out.String(), errb.String()
}

// tinyReport runs a minimal real suite once per test file; entries still
// cover the full architecture matrix.
func tinyReport(t *testing.T, dir, name string) (*perfmon.BenchReport, string) {
	t.Helper()
	r, err := perfmon.RunBench(perfmon.BenchConfig{
		Tier: perfmon.TierShort, Requests: 300, Seed: 7,
		Workloads: []string{"qsort"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := perfmon.WriteBenchReport(path, r); err != nil {
		t.Fatal(err)
	}
	return r, path
}

// TestBenchCompareExitCodes is the acceptance check: -compare exits non-zero
// on an injected regression and zero on a clean (or warn-only) comparison.
func TestBenchCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base, basePath := tinyReport(t, dir, "BENCH_1.json")

	// Self-comparison at a generous tolerance is clean and exits 0.
	code, stdout, stderr := runBenchCmd(t,
		"-compare", basePath, "-current", basePath, "-tol", "0.5")
	if code != 0 {
		t.Fatalf("self-compare exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "ok: no host-time metric") {
		t.Errorf("self-compare output: %s", stdout)
	}

	// Inject a 10× wall-time regression into a copy of the report.
	slow := *base
	slow.Entries = append([]perfmon.BenchEntry(nil), base.Entries...)
	slow.Entries[0].WallNs *= 10
	slow.Entries[0].NsPerEvent *= 10
	slow.Entries[0].EventsPerSec /= 10
	slowPath := filepath.Join(dir, "BENCH_2.json")
	if err := perfmon.WriteBenchReport(slowPath, &slow); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runBenchCmd(t,
		"-compare", basePath, "-current", slowPath, "-tol", "0.5")
	if code == 0 {
		t.Fatalf("injected regression not flagged:\n%s", stdout)
	}
	if !strings.Contains(stdout, "BENCH REGRESSIONS") {
		t.Errorf("regression report missing header: %s", stdout)
	}

	// -warn reports the same regressions but keeps the exit code green.
	code, stdout, _ = runBenchCmd(t,
		"-compare", basePath, "-current", slowPath, "-tol", "0.5", "-warn")
	if code != 0 {
		t.Errorf("warn-only exit = %d", code)
	}
	if !strings.Contains(stdout, "BENCH REGRESSIONS") || !strings.Contains(stdout, "warn-only") {
		t.Errorf("warn-only output: %s", stdout)
	}
}

// TestBenchRunWritesNumberedReport runs the real subcommand in a temp cwd
// and checks BENCH_1.json appears with the full matrix.
func TestBenchRunWritesNumberedReport(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd) //nolint:errcheck

	code, stdout, stderr := runBenchCmd(t,
		"-requests", "300", "-seed", "7", "-workloads", "qsort")
	if code != 0 {
		t.Fatalf("bench exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	r, err := perfmon.ReadBenchReport(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 4 {
		t.Fatalf("entries = %d, want one per architecture", len(r.Entries))
	}

	// Bad flags exit 2, unknown tier exits 1.
	if code, _, _ := runBenchCmd(t, "-current", "x.json"); code != 2 {
		t.Errorf("-current without -compare exit = %d", code)
	}
	if code, _, _ := runBenchCmd(t, "-tier", "nope"); code != 1 {
		t.Errorf("bad tier exit = %d", code)
	}
}
