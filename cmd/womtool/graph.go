package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"womcpcm/internal/tsdb"
)

// graphDefaults is the curated dashboard rendered when -metrics is not
// given: service throughput and failures as rates, load gauges as
// averages.
var graphDefaults = []string{
	"womd_jobs_completed_total",
	"womd_jobs_failed_total",
	"womd_jobs_rejected_total",
	"womd_queue_depth",
	"womd_jobs_running",
	"womd_tenant_dequeued_total",
	"womd_fleet_jobs_completed_total",
}

// graphChart is one fetched metric ready to render: one polyline per
// labelset.
type graphChart struct {
	Metric string
	Agg    string
	StepMs int64
	Series []tsdb.SeriesResult
}

// graphCmd drives `womtool graph`: it pulls range queries from a womd
// instance's embedded metric history (GET /v1/query_range) and writes a
// self-contained HTML dashboard of inline-SVG line charts — no external
// assets, openable from a CI artifact. Counters default to agg=rate,
// gauges to agg=avg; a metric entry "name:agg" overrides.
func graphCmd(args []string) {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8080", "base URL of the womd instance")
	metrics := fs.String("metrics", "", "comma-separated metrics to chart, each optionally name:agg (empty = a curated default set)")
	window := fs.Duration("window", time.Hour, "how far back to query")
	step := fs.Duration("step", 0, "query resolution (0 = window/120)")
	out := fs.String("o", "womd-graphs.html", "output HTML file")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	names := graphDefaults
	if *metrics != "" {
		names = strings.Split(*metrics, ",")
	}
	stepMs := step.Milliseconds()
	if stepMs <= 0 {
		stepMs = (*window / 120).Milliseconds()
	}
	if stepMs < 1000 {
		stepMs = 1000
	}
	end := time.Now()
	start := end.Add(-*window)

	client := &http.Client{Timeout: 30 * time.Second}
	var charts []graphChart
	var skipped []string
	for _, entry := range names {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		metric, agg, hasAgg := strings.Cut(entry, ":")
		if !hasAgg {
			agg = "avg"
			if strings.HasSuffix(metric, "_total") {
				agg = "rate"
			}
		}
		q := url.Values{}
		q.Set("metric", metric)
		q.Set("agg", agg)
		q.Set("start", fmt.Sprint(start.Unix()))
		q.Set("end", fmt.Sprint(end.Unix()))
		q.Set("step", fmt.Sprintf("%dms", stepMs))
		resp, err := client.Get(strings.TrimRight(*base, "/") + "/v1/query_range?" + q.Encode())
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode == http.StatusNotImplemented {
			resp.Body.Close()
			fatal(fmt.Errorf("%s has no metric history (womd -history=false?)", *base))
		}
		var body struct {
			Series []tsdb.SeriesResult `json:"series"`
			Error  string              `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("decoding %s: %w", metric, err))
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("query %s: HTTP %d: %s", metric, resp.StatusCode, body.Error))
		}
		if len(body.Series) == 0 {
			skipped = append(skipped, metric)
			continue
		}
		charts = append(charts, graphChart{Metric: metric, Agg: agg, StepMs: stepMs, Series: body.Series})
	}

	var b strings.Builder
	renderGraphHTML(&b, *base, start, end, charts, skipped)
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d charts", *out, len(charts))
	if len(skipped) > 0 {
		fmt.Printf(", no data: %s", strings.Join(skipped, " "))
	}
	fmt.Println(")")
}

const (
	gChartW   = 860
	gChartH   = 180
	gMarginL  = 64
	gMarginR  = 12
	gMarginT  = 10
	gMarginB  = 22
	gMaxLines = 12 // charts with more labelsets keep the busiest ones
)

var graphColors = []string{
	"#1668dc", "#d4380d", "#389e0d", "#722ed1", "#d48806",
	"#08979c", "#c41d7f", "#5b8c00", "#531dab", "#ad4e00",
	"#006d75", "#9e1068",
}

// renderGraphHTML writes the full dashboard document. Pure over its
// inputs so tests can assert the SVG without a server.
func renderGraphHTML(b *strings.Builder, base string, start, end time.Time,
	charts []graphChart, skipped []string) {
	fmt.Fprintf(b, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>womd metric history</title>
<style>
body{font:14px/1.45 -apple-system,"Segoe UI",sans-serif;margin:24px;color:#222;max-width:960px}
h1{font-size:20px}h2{font-size:15px;margin:18px 0 2px}
p.sub{color:#666;margin:2px 0 6px;font-size:12px}
svg{background:#fafafa;border:1px solid #eee}
p.legend{margin:2px 0 4px;font-size:12px}
p.legend span{margin-right:12px;white-space:nowrap}
p.legend i{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}
</style></head><body>
<h1>womd metric history</h1>
<p class="sub">%s &middot; %s &rarr; %s</p>
`, html.EscapeString(base),
		html.EscapeString(start.Format(time.RFC3339)),
		html.EscapeString(end.Format(time.RFC3339)))
	for i := range charts {
		renderGraphChart(b, &charts[i])
	}
	if len(charts) == 0 {
		b.WriteString("<p>No data in the queried window.</p>\n")
	}
	if len(skipped) > 0 {
		fmt.Fprintf(b, "<p class=\"sub\">No data: %s</p>\n",
			html.EscapeString(strings.Join(skipped, ", ")))
	}
	b.WriteString("</body></html>\n")
}

// seriesLabel compresses a labelset for the legend: k=v pairs, sorted.
func seriesLabel(sr *tsdb.SeriesResult) string {
	if len(sr.Labels) == 0 {
		return "(no labels)"
	}
	keys := make([]string, 0, len(sr.Labels))
	for k := range sr.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + sr.Labels[k]
	}
	return strings.Join(parts, ",")
}

func renderGraphChart(b *strings.Builder, c *graphChart) {
	series := c.Series
	if len(series) > gMaxLines {
		// Keep the labelsets with the largest peaks; note the cut.
		sorted := append([]tsdb.SeriesResult(nil), series...)
		sort.Slice(sorted, func(i, j int) bool {
			return seriesPeak(&sorted[i]) > seriesPeak(&sorted[j])
		})
		series = sorted[:gMaxLines]
	}
	var minT, maxT int64
	maxV := 0.0
	for i := range series {
		for _, p := range series[i].Points {
			if minT == 0 || p.T < minT {
				minT = p.T
			}
			if p.T > maxT {
				maxT = p.T
			}
			if p.V > maxV {
				maxV = p.V
			}
		}
	}
	if maxT <= minT {
		return
	}
	if maxV <= 0 {
		maxV = 1
	}
	fmt.Fprintf(b, "<h2>%s</h2>\n<p class=\"sub\">agg=%s, step=%s, tier=%s</p>\n",
		html.EscapeString(c.Metric), html.EscapeString(c.Agg),
		(time.Duration(c.StepMs) * time.Millisecond).String(),
		(time.Duration(series[0].TierMs) * time.Millisecond).String())
	if len(c.Series) > gMaxLines {
		fmt.Fprintf(b, "<p class=\"sub\">showing %d of %d labelsets (largest peaks)</p>\n",
			gMaxLines, len(c.Series))
	}
	b.WriteString("<p class=\"legend\">")
	for i := range series {
		fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>",
			graphColors[i%len(graphColors)], html.EscapeString(seriesLabel(&series[i])))
	}
	b.WriteString("</p>\n")

	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">\n",
		gChartW, gChartH, gChartW, gChartH)
	// Frame: y-axis max/zero labels and the time extent.
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ccc\"/>\n",
		gMarginL, gChartH-gMarginB, gChartW-gMarginR, gChartH-gMarginB)
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ccc\"/>\n",
		gMarginL, gMarginT, gMarginL, gChartH-gMarginB)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">%.4g</text>\n",
		gMarginL-4, gMarginT+8, maxV)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">0</text>\n",
		gMarginL-4, gChartH-gMarginB)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#666\">%s</text>\n",
		gMarginL, gChartH-6, html.EscapeString(time.UnixMilli(minT).Format("15:04:05")))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">%s</text>\n",
		gChartW-gMarginR, gChartH-6, html.EscapeString(time.UnixMilli(maxT).Format("15:04:05")))
	for i := range series {
		var pts strings.Builder
		for _, p := range series[i].Points {
			x := float64(gMarginL) + float64(p.T-minT)/float64(maxT-minT)*float64(gChartW-gMarginL-gMarginR)
			y := float64(gChartH-gMarginB) - p.V/maxV*float64(gChartH-gMarginT-gMarginB)
			fmt.Fprintf(&pts, "%.1f,%.1f ", x, y)
		}
		fmt.Fprintf(b, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\"/>\n",
			graphColors[i%len(graphColors)], strings.TrimSpace(pts.String()))
	}
	b.WriteString("</svg>\n")
}

func seriesPeak(sr *tsdb.SeriesResult) float64 {
	peak := 0.0
	for _, p := range sr.Points {
		if p.V > peak {
			peak = p.V
		}
	}
	return peak
}
