package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"womcpcm/internal/resultstore"
)

// regress drives the regression workflow over a result-store cache:
//
//	womtool regress -dir out/cache pin v1           pin a baseline snapshot
//	womtool regress -dir out/cache -tol 0.02 report v1   compare and report
//	womtool regress -dir out/cache list             list pinned baselines
//
// report exits 1 when any metric moved beyond the tolerance, so it slots
// straight into CI.
func regress(args []string) {
	fs := flag.NewFlagSet("regress", flag.ExitOnError)
	dir := fs.String("dir", "womcpcm-cache", "result-store directory")
	tol := fs.Float64("tol", 0, "relative tolerance per metric (0 = exact)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: womtool regress [-dir DIR] [-tol F] pin <name> | report <name> | list")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	store, err := resultstore.Open(*dir, resultstore.Options{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	switch rest[0] {
	case "pin":
		if len(rest) != 2 {
			fatal(fmt.Errorf("regress pin needs a baseline name"))
		}
		b, err := store.PinBaseline(rest[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pinned baseline %q: %d results, schema %s\n", b.Name, len(b.Metrics), b.Schema)
	case "report":
		if len(rest) != 2 {
			fatal(fmt.Errorf("regress report needs a baseline name"))
		}
		reportRegressions(store, rest[1], *tol)
	case "list":
		baselines := store.Baselines()
		if len(baselines) == 0 {
			fmt.Println("no baselines pinned")
			return
		}
		for _, b := range baselines {
			fmt.Printf("%-20s %4d results  schema %-8s pinned %s\n",
				b.Name, len(b.Metrics), b.Schema, b.CreatedAt.Format("2006-01-02 15:04:05"))
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// reportRegressions prints per-metric deltas beyond tolerance and exits
// non-zero when any are found.
func reportRegressions(store *resultstore.Store, name string, tol float64) {
	b, err := store.Baseline(name)
	if err != nil {
		fatal(err)
	}
	cmp, err := resultstore.Compare(b, store.Entries(), tol)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline %q (schema %s) vs store %s — %d result(s) checked, tolerance %g\n",
		cmp.Baseline, cmp.Schema, store.Dir(), cmp.Checked, cmp.Tolerance)
	if len(cmp.MissingKeys) > 0 {
		fmt.Printf("  %d baseline result(s) not yet reproduced in the store (not failures):\n", len(cmp.MissingKeys))
		for _, key := range cmp.MissingKeys {
			fmt.Printf("    %-10s %.12s…\n", b.Experiments[key], key)
		}
	}
	if len(cmp.NewKeys) > 0 {
		fmt.Printf("  %d store result(s) unknown to the baseline\n", len(cmp.NewKeys))
	}
	if len(cmp.Regressions) == 0 {
		fmt.Println("ok: no metric moved beyond tolerance")
		return
	}

	// Group the report by result key so one experiment's drift reads as a
	// block of metric lines.
	byKey := make(map[string][]resultstore.Delta)
	var keys []string
	for _, d := range cmp.Regressions {
		if _, ok := byKey[d.Key]; !ok {
			keys = append(keys, d.Key)
		}
		byKey[d.Key] = append(byKey[d.Key], d)
	}
	sort.Strings(keys)
	fmt.Printf("REGRESSIONS: %d metric(s) beyond tolerance\n", len(cmp.Regressions))
	for _, key := range keys {
		ds := byKey[key]
		fmt.Printf("  %s (%.12s…):\n", ds[0].Experiment, key)
		for _, d := range ds {
			switch {
			case d.Base == nil:
				fmt.Printf("    %-40s new metric, now %.6g\n", d.Metric, *d.Current)
			case d.Current == nil:
				fmt.Printf("    %-40s vanished, was %.6g\n", d.Metric, *d.Base)
			default:
				fmt.Printf("    %-40s %.6g → %.6g (%+.2f%%)\n",
					d.Metric, *d.Base, *d.Current, 100*(*d.Current-*d.Base)/nonzero(*d.Base))
			}
		}
	}
	os.Exit(1)
}

// nonzero guards the percentage display against a zero baseline.
func nonzero(v float64) float64 {
	if v == 0 {
		return 1e-12
	}
	return v
}
