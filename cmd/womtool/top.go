package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"womcpcm/internal/cluster"
	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/sched"
)

// topSnapshot is one poll of a womd instance's ops surface. Sections the
// target does not serve (no fleet on a standalone womd, no tenants without
// -tenants, no alerts with -alerts=false) stay nil and render as absent
// rather than failing the whole frame.
type topSnapshot struct {
	At       time.Time
	Ready    *engine.Readiness
	Fleet    *cluster.FleetView
	Tenants  []sched.TenantView
	AlertsOn bool // /v1/alerts answered; a healthy empty list still counts
	Alerts   []health.AlertView
	Counts   map[health.State]int
	Sparks   []sparkline // metric-history sparklines; nil without -history
	Errs     []string
}

// sparkline is one history-fed trend row: label plus the queried points,
// oldest first.
type sparkline struct {
	Label  string
	Unit   string
	Points []float64
}

// topCmd drives `womtool top`: a live ops dashboard over GET /v1/fleet,
// /v1/tenants, /v1/alerts, and /readyz — firing alerts first, then fleet
// and tenant load, then ten-minute sparklines from the target's metric
// history when it runs with -history. -once prints a single frame and
// exits 2 if any alert is firing, so smoke tests and cron wrappers can
// gate on the exit code; -html re-renders a self-refreshing HTML
// snapshot instead.
func topCmd(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of the womd instance to watch")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "print one frame and exit")
	frames := fs.Int("n", 0, "stop after this many frames (0 = until interrupted)")
	htmlOut := fs.String("html", "", "write each frame to this HTML file (meta-refresh) instead of the terminal")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; ; i++ {
		snap := pollTop(client, strings.TrimRight(*url, "/"))
		switch {
		case *htmlOut != "":
			var buf strings.Builder
			renderTopHTML(&buf, snap, *interval)
			if err := os.WriteFile(*htmlOut, []byte(buf.String()), 0o644); err != nil {
				fatal(err)
			}
		case *once:
			renderTop(os.Stdout, snap)
		default:
			fmt.Print("\x1b[2J\x1b[H") // clear + home, a fresh frame each poll
			renderTop(os.Stdout, snap)
		}
		if *once {
			if snap.Counts[health.StateFiring] > 0 {
				os.Exit(2)
			}
			return
		}
		if *frames > 0 && i+1 >= *frames {
			return
		}
		time.Sleep(*interval)
	}
}

// topGet decodes one endpoint into out. ok=false (no error recorded) means
// the endpoint is not enabled on the target; transport failures and other
// statuses are reported.
func topGet(client *http.Client, url string, out any, errs *[]string) bool {
	resp, err := client.Get(url)
	if err != nil {
		*errs = append(*errs, err.Error())
		return false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotImplemented, http.StatusNotFound:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return false
	default:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		*errs = append(*errs, fmt.Sprintf("%s: HTTP %d", url, resp.StatusCode))
		return false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		*errs = append(*errs, fmt.Sprintf("%s: %v", url, err))
		return false
	}
	return true
}

func pollTop(client *http.Client, base string) topSnapshot {
	snap := topSnapshot{At: time.Now()}

	// /readyz answers 200 and 503 with the same JSON body; both are data.
	if resp, err := client.Get(base + "/readyz"); err != nil {
		snap.Errs = append(snap.Errs, err.Error())
	} else {
		var rd engine.Readiness
		if err := json.NewDecoder(resp.Body).Decode(&rd); err == nil {
			snap.Ready = &rd
		}
		resp.Body.Close()
	}

	var fleet cluster.FleetView
	if topGet(client, base+"/v1/fleet", &fleet, &snap.Errs) {
		snap.Fleet = &fleet
	}
	var tenants struct {
		Tenants []sched.TenantView `json:"tenants"`
	}
	if topGet(client, base+"/v1/tenants", &tenants, &snap.Errs) {
		snap.Tenants = tenants.Tenants
	}
	var alerts struct {
		Alerts []health.AlertView   `json:"alerts"`
		Counts map[health.State]int `json:"counts"`
	}
	if topGet(client, base+"/v1/alerts", &alerts, &snap.Errs) {
		snap.AlertsOn = true
		snap.Alerts = alerts.Alerts
		snap.Counts = alerts.Counts
	}
	snap.Sparks = pollSparks(client, base, snap.At)
	return snap
}

// sparkQueries is the trend set `womtool top` asks the metric history
// for: throughput and failures as rates, load as averages.
var sparkQueries = []struct {
	label, metric, agg, unit string
}{
	{"jobs/s", "womd_jobs_completed_total", "rate", "jobs/s"},
	{"fails/s", "womd_jobs_failed_total", "rate", "jobs/s"},
	{"queue", "womd_queue_depth", "avg", "jobs"},
	{"running", "womd_jobs_running", "avg", "jobs"},
}

// pollSparks fetches ten minutes of history at 30s resolution for the
// sparkline rows. A target without -history (501) yields nil and the
// section renders as absent; labeled series are summed into one trend.
func pollSparks(client *http.Client, base string, now time.Time) []sparkline {
	var out []sparkline
	for _, q := range sparkQueries {
		u := fmt.Sprintf("%s/v1/query_range?metric=%s&agg=%s&start=%d&end=%d&step=30s",
			base, q.metric, q.agg, now.Add(-10*time.Minute).Unix(), now.Unix())
		var body struct {
			Series []struct {
				Points []struct {
					T int64   `json:"t"`
					V float64 `json:"v"`
				} `json:"points"`
			} `json:"series"`
		}
		var discard []string
		if !topGet(client, u, &body, &discard) || len(body.Series) == 0 {
			continue
		}
		byT := map[int64]float64{}
		var ts []int64
		for _, s := range body.Series {
			for _, p := range s.Points {
				if _, seen := byT[p.T]; !seen {
					ts = append(ts, p.T)
				}
				byT[p.T] += p.V
			}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		pts := make([]float64, len(ts))
		for i, t := range ts {
			pts[i] = byT[t]
		}
		out = append(out, sparkline{Label: q.label, Unit: q.unit, Points: pts})
	}
	return out
}

// sparkBars renders points as a unicode block-bar strip scaled to the
// strip's own max.
func sparkBars(points []float64) string {
	const bars = "▁▂▃▄▅▆▇█"
	max := 0.0
	for _, v := range points {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range points {
		if max <= 0 || v <= 0 {
			b.WriteRune('▁')
			continue
		}
		idx := int(v / max * 7.999)
		b.WriteRune(rune([]rune(bars)[idx]))
	}
	return b.String()
}

func topAge(at, now time.Time) string {
	return now.Sub(at).Truncate(time.Second).String()
}

// renderTop writes one text frame. Pure over the snapshot so tests can
// assert frames without a server or a clock.
func renderTop(w io.Writer, snap topSnapshot) {
	fmt.Fprintf(w, "womd top  %s", snap.At.Format(time.RFC3339))
	if snap.Ready != nil {
		if snap.Ready.Ready {
			fmt.Fprintf(w, "  ready")
		} else {
			fmt.Fprintf(w, "  NOT READY (%s)", snap.Ready.Reason)
		}
		fmt.Fprintf(w, "  queue %d", snap.Ready.QueueDepth)
		if snap.Ready.QueueCap > 0 {
			fmt.Fprintf(w, "/%d", snap.Ready.QueueCap)
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "\nALERTS  firing %d  pending %d  resolved %d\n",
		snap.Counts[health.StateFiring], snap.Counts[health.StatePending],
		snap.Counts[health.StateResolved])
	if !snap.AlertsOn {
		fmt.Fprintln(w, "  (alerting not enabled)")
	}
	for _, a := range snap.Alerts {
		line := fmt.Sprintf("  %-8s %-28s %-14s %s  for %s",
			strings.ToUpper(string(a.State)), a.Rule, a.Subject, a.Severity,
			topAge(a.StartedAt, snap.At))
		if a.Threshold != 0 {
			line += fmt.Sprintf("  %.3g vs %.3g", a.Value, a.Threshold)
		}
		if tid := a.Annotations["exemplar_trace"]; tid != "" {
			line += "  trace " + tid
		}
		fmt.Fprintln(w, line)
	}

	if snap.Fleet != nil {
		t := snap.Fleet.Totals
		ready := 0
		for _, ws := range snap.Fleet.Workers {
			if ws.Ready {
				ready++
			}
		}
		fmt.Fprintf(w, "\nFLEET   %d workers (%d ready)  queued %d  running %d  completed %d  failed %d  scrape_errors %d\n",
			t.Workers, ready, t.QueueDepth, t.Running, t.Completed, t.Failed,
			snap.Fleet.Federation.ScrapeErrors)
		for _, ws := range snap.Fleet.Workers {
			state := "ready"
			switch {
			case ws.Draining:
				state = "draining"
			case !ws.Ready:
				state = "NOT READY"
			}
			fmt.Fprintf(w, "  %-6s %-16s %-9s hb %4dms  q %-4d run %-4d done %d\n",
				ws.ID, ws.Name, state, ws.HeartbeatAgeMs, ws.QueueDepth, ws.Running, ws.Completed)
		}
	}

	if snap.Tenants != nil {
		fmt.Fprintln(w, "\nTENANTS")
		views := append([]sched.TenantView(nil), snap.Tenants...)
		sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
		for _, v := range views {
			fmt.Fprintf(w, "  %-14s depth %-4d inflight %-3d sheds %-5d slo 1m %.3f  5m %.3f  30m %.3f\n",
				v.Name, v.Depth, v.Inflight, v.Sheds,
				v.SLOAttainment1m, v.SLOAttainment5m, v.SLOAttainment30m)
		}
	}

	if len(snap.Sparks) > 0 {
		fmt.Fprintln(w, "\nHISTORY (10m)")
		for _, s := range snap.Sparks {
			last := 0.0
			if len(s.Points) > 0 {
				last = s.Points[len(s.Points)-1]
			}
			fmt.Fprintf(w, "  %-9s %s  %.3g %s\n", s.Label, sparkBars(s.Points), last, s.Unit)
		}
	}

	for _, e := range snap.Errs {
		fmt.Fprintf(w, "\n! %s\n", e)
	}
}

// renderTopHTML wraps the text frame in a minimal self-refreshing page, so
// `womtool top -html out.html` plus any static file server is a dashboard.
func renderTopHTML(w io.Writer, snap topSnapshot, interval time.Duration) {
	var frame strings.Builder
	renderTop(&frame, snap)
	refresh := int(interval.Seconds())
	if refresh < 1 {
		refresh = 1
	}
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="%d">
<title>womd top</title>
<style>body{background:#111;color:#ddd;font:13px/1.5 monospace;padding:1em}</style>
</head><body><pre>%s</pre></body></html>
`, refresh, html.EscapeString(frame.String()))
}
