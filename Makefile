# womcpcm build/verify entry points. `make verify` is the tier-1 gate
# (build + test); `make race` and `make fuzz` are the deeper checks the
# service subsystem relies on.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test vet race fuzz bench verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Round-trip fuzzing of the trace codecs womd exposes to uploads.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTrace -fuzztime=$(FUZZTIME) ./internal/trace/

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

verify: build test vet

clean:
	$(GO) clean ./...
