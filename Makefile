# womcpcm build/verify entry points. `make verify` is the tier-1 gate
# (build + test); `make race` and `make fuzz` are the deeper checks the
# service subsystem relies on.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test vet fmt-check race fuzz bench bench-probe bench-suite bench-compare cluster-smoke cluster-demo loadgen-smoke alerts-smoke history-smoke verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Round-trip fuzzing of the trace codecs womd exposes to uploads.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTrace -fuzztime=$(FUZZTIME) ./internal/trace/

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Probe overhead benchmarks: RunNilProbe is the zero-overhead baseline the
# instrumentation contract promises (compare against Counter/Ring).
bench-probe:
	$(GO) test -run=NONE -bench=Probe -benchmem ./internal/memctrl/

# Standardized host-time suite (internal/perfmon): the fixed workload ×
# architecture matrix, written as the next BENCH_<n>.json at the repo root.
bench-suite:
	$(GO) run ./cmd/womtool bench

# Diff a fresh short-tier run against the committed BENCH_1.json pin.
# Host timings are machine-dependent, so the default tolerance is wide;
# CI runs this warn-only.
bench-compare:
	$(GO) run ./cmd/womtool bench -o /dev/null -compare BENCH_1.json -tol 0.5

# End-to-end cluster check against real processes: coordinator + worker on
# localhost, one job over the wire, asserted to have run on the worker.
cluster-smoke:
	scripts/cluster_smoke.sh

# End-to-end multi-tenant load check: womd -tenants + womtool loadgen over
# a short Poisson run, interactive SLO asserted, SIGHUP reload exercised.
# The womcpcm-loadgen-v1 report lands at ./loadgen-report.json.
loadgen-smoke:
	scripts/loadgen_smoke.sh

# End-to-end alerting check: standalone womd with an aggressive rules
# file, queue saturated with slow jobs, /readyz 503 + firing queue-hot
# alert + womd_alert_* families asserted. The firing alert list lands at
# ./alerts-smoke.json.
alerts-smoke:
	scripts/alerts_smoke.sh

# End-to-end metric-history check: womd with a persistent -history-dir,
# query_range + series + alert journal asserted, restart continuity with
# the journaled alert reinstalled, and a womtool graph dashboard rendered
# to ./history-smoke.html.
history-smoke:
	scripts/history_smoke.sh

# Interactive cluster on localhost: coordinator on :8080, two workers on
# :8081/:8082. Submit jobs to http://127.0.0.1:8080/v1/jobs and watch
# /cluster/v1/workers; Ctrl-C tears the fleet down.
cluster-demo:
	@$(GO) build -o /tmp/womd-demo ./cmd/womd; \
	/tmp/womd-demo -role=worker -addr :8081 -coordinator http://127.0.0.1:8080 -cluster-name demo-a & W1=$$!; \
	/tmp/womd-demo -role=worker -addr :8082 -coordinator http://127.0.0.1:8080 -cluster-name demo-b & W2=$$!; \
	trap "kill $$W1 $$W2 2>/dev/null" EXIT INT TERM; \
	/tmp/womd-demo -role=coordinator -addr :8080

# Fails listing the files gofmt would rewrite; CI runs this on every push.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

verify: build test vet fmt-check

clean:
	$(GO) clean ./...
