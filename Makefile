# womcpcm build/verify entry points. `make verify` is the tier-1 gate
# (build + test); `make race` and `make fuzz` are the deeper checks the
# service subsystem relies on.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test vet fmt-check race fuzz bench bench-probe verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Round-trip fuzzing of the trace codecs womd exposes to uploads.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTrace -fuzztime=$(FUZZTIME) ./internal/trace/

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Probe overhead benchmarks: RunNilProbe is the zero-overhead baseline the
# instrumentation contract promises (compare against Counter/Ring).
bench-probe:
	$(GO) test -run=NONE -bench=Probe -benchmem ./internal/memctrl/

# Fails listing the files gofmt would rewrite; CI runs this on every push.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

verify: build test vet fmt-check

clean:
	$(GO) clean ./...
