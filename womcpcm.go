// Package womcpcm is a from-scratch Go reproduction of "Write-Once-Memory-
// Code Phase Change Memory" (Jiayin Li and Kartik Mohanram, DATE 2014): a
// PCM memory architecture that integrates inverted WOM-codes at the memory
// organization and controller levels so that row rewrites use only fast
// RESET operations, plus the paper's PCM-refresh policy and the WCPCM
// WOM-cache architecture.
//
// The package is a facade over the implementation packages:
//
//   - internal/womcode — WOM codes: the paper's <2^2>^2/3 Rivest–Shamir
//     code (Table 1), inversion, parity codes, row codecs, Flip-N-Write,
//     and an exhaustive WOM-property verifier.
//   - internal/pcm — device model: §5 geometry and timing, physical
//     address mapping, and a functional cell array that enforces the
//     RESET-only programming discipline.
//   - internal/memctrl — the event-driven memory-system simulator
//     (DRAMSim2 stand-in): banks, queues, write-through row buffers, the
//     PCM-refresh engine with write pausing, and the per-rank WOM-cache.
//   - internal/core — the four evaluated architectures as timing Systems
//     and data-carrying FunctionalMemory models.
//   - internal/workload — synthetic generators for the paper's 20
//     benchmarks (the Pin-trace substitution).
//   - internal/sim — the experiment harness regenerating every figure,
//     plus scheduling/hybrid/organization/pausing/rewrite-budget ablations.
//   - internal/energy — post-hoc energy pricing (§3.2's refresh rule).
//   - internal/endurance — Start-Gap wear leveling and lifetime projection
//     (the paper's §6 future work).
//
// Quick start:
//
//	sys, _ := womcpcm.NewSystem(womcpcm.Refresh, womcpcm.DefaultOptions())
//	gen, _ := womcpcm.NewGenerator(womcpcm.MustProfile("qsort"), womcpcm.DefaultGeometry(), 1)
//	run, _ := sys.Simulate(womcpcm.Limit(gen, 100000))
//	fmt.Println(run.Summary())
//
// See cmd/womsim for the full evaluation, examples/ for runnable scenarios,
// and EXPERIMENTS.md for paper-versus-measured results.
package womcpcm

import (
	"womcpcm/internal/core"
	"womcpcm/internal/endurance"
	"womcpcm/internal/energy"
	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/sim"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/womcode"
	"womcpcm/internal/workload"
)

// Architectures (the paper's four evaluated systems).
type (
	// Arch identifies an architecture; see Baseline, WOMCode, Refresh, WCPCM.
	Arch = core.Arch
	// Options tunes a System away from the paper's §5 defaults.
	Options = core.Options
	// System is a reusable timing simulation of one architecture.
	System = core.System
	// FunctionalMemory stores real bits through the WOM codec.
	FunctionalMemory = core.FunctionalMemory
	// WriteResult reports what a functional write physically did.
	WriteResult = core.WriteResult
)

// The four architectures in the paper's plotting order.
const (
	Baseline = core.Baseline
	WOMCode  = core.WOMCode
	Refresh  = core.Refresh
	WCPCM    = core.WCPCM
)

// Device model.
type (
	// Geometry is the §5 memory organization.
	Geometry = pcm.Geometry
	// Timing is the §5 latency set.
	Timing = pcm.Timing
	// Wear aggregates endurance counters.
	Wear = pcm.Wear
)

// WOM codes.
type (
	// Code is a write-once-memory code.
	Code = womcode.Code
	// RowCodec applies a Code across a whole memory row.
	RowCodec = womcode.RowCodec
)

// Traces and workloads.
type (
	// Record is one memory access.
	Record = trace.Record
	// Source yields a time-ordered access stream.
	Source = trace.Source
	// Profile parameterizes a synthetic benchmark.
	Profile = workload.Profile
	// Generator produces a deterministic access stream for a Profile.
	Generator = workload.Generator
)

// Results.
type (
	// Run is the statistics of one simulation.
	Run = stats.Run
	// ExpConfig parameterizes a paper experiment.
	ExpConfig = sim.ExpConfig
	// ExpParams is the serializable experiment parameterization shared by
	// cmd/womsim flags and cmd/womd job submissions.
	ExpParams = sim.Params
	// Experiment is one named entry in the experiment registry.
	Experiment = sim.Experiment
	// ExpResult is a completed registry experiment (data + rendered table).
	ExpResult = sim.Result
)

// Architecture construction.
var (
	// NewSystem builds a timing simulation of an architecture.
	NewSystem = core.NewSystem
	// NewFunctionalMemory builds a data-carrying model of an architecture.
	NewFunctionalMemory = core.NewFunctionalMemory
	// DefaultOptions is the paper's §5 configuration.
	DefaultOptions = core.DefaultOptions
	// Arches lists the four architectures in plotting order.
	Arches = core.Arches
)

// Device defaults.
var (
	// DefaultGeometry is the §5 organization: 16 ranks × 32 banks.
	DefaultGeometry = pcm.DefaultGeometry
	// DefaultTiming is the §5 latency set (27/150/40/150 ns).
	DefaultTiming = pcm.DefaultTiming
)

// Codes.
var (
	// RS223 is the conventional <2^2>^2/3 Rivest–Shamir code (Table 1).
	RS223 = womcode.RS223
	// InvRS223 is its PCM-inverted form — the paper's working code.
	InvRS223 = womcode.InvRS223
	// Parity is the <2>^n/n parity code (n rewrites of one bit).
	Parity = womcode.Parity
	// XOR is the Rivest–Shamir <2^k>^2/(2^k−1) family; Table 1 is XOR(2).
	XOR = womcode.XOR
	// Invert flips a code between conventional and PCM orientation.
	Invert = womcode.Invert
	// NewRowCodec applies a code across a row of the given width.
	NewRowCodec = womcode.NewRowCodec
	// VerifyCode exhaustively checks the WOM property.
	VerifyCode = womcode.Verify
)

// Workloads and traces.
var (
	// Profiles lists the paper's 20 benchmarks.
	Profiles = workload.Profiles
	// ProfileByName finds one benchmark profile.
	ProfileByName = workload.ProfileByName
	// NewGenerator builds a deterministic trace generator.
	NewGenerator = workload.NewGenerator
)

// Experiments (one per paper figure; see also cmd/womsim and cmd/womd).
var (
	// Fig5 regenerates Fig. 5(a)/(b): normalized write/read latency.
	Fig5 = sim.Fig5
	// Fig6 regenerates Fig. 6: WOM-cache hit rates per banks/rank.
	Fig6 = sim.Fig6
	// Fig7 regenerates Fig. 7: WCPCM write latency per banks/rank.
	Fig7 = sim.Fig7
	// Replay runs one recorded trace through all four architectures.
	Replay = sim.Replay
	// Experiments lists the registry backing womsim and the womd service.
	Experiments = sim.Experiments
	// LookupExperiment resolves a registry name or womsim alias.
	LookupExperiment = sim.LookupExperiment
)

// MustProfile returns a benchmark profile or panics; convenient for
// examples and tests.
func MustProfile(name string) Profile {
	p, err := workload.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Limit bounds a source to n records.
func Limit(src Source, n int) Source { return trace.NewLimit(src, n) }

// Records adapts an in-memory slice to a Source.
func Records(recs []Record) Source { return trace.NewSliceSource(recs) }

// ControllerConfig exposes the underlying memory-controller configuration
// type for advanced experiments (custom thresholds, pausing ablations).
type ControllerConfig = memctrl.Config

// Extensions beyond the paper's figures.
type (
	// EnergyModel prices a run's operations (§3.2 refresh-energy rule).
	EnergyModel = energy.Model
	// EnergyBreakdown is a priced run.
	EnergyBreakdown = energy.Breakdown
	// StartGap is the MICRO 2009 wear-leveling scheme (§6 future work).
	StartGap = endurance.StartGap
	// Lifetime projects device lifetime from wear counters.
	Lifetime = endurance.Lifetime
)

var (
	// NewMultiChannel stripes cache lines across n independent channels,
	// the §1 capacity/bandwidth scaling axis beyond the paper's single
	// channel.
	NewMultiChannel = memctrl.NewMultiChannel
	// DefaultEnergy is a representative pJ-per-row-operation pricing.
	DefaultEnergy = energy.Default
	// PriceRuns renders an energy comparison across runs.
	PriceRuns = energy.Compare
	// NewStartGap builds a wear-leveling region.
	NewStartGap = endurance.NewStartGap
	// DefaultLifetime assumes 10^8-write cells.
	DefaultLifetime = endurance.DefaultLifetime
	// SearchCode constructs a WOM-code for k data bits over n wits.
	SearchCode = womcode.Search
)
