package womcpcm_test

import (
	"strings"
	"testing"

	"womcpcm"
	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// benchGen adapts a workload generator for the throughput benchmark.
type benchGen struct{ gen *workload.Generator }

func newBenchGen() (*benchGen, error) {
	g, err := workload.NewGenerator(womcpcm.MustProfile("water-ns"), pcm.DefaultGeometry(), 3)
	if err != nil {
		return nil, err
	}
	return &benchGen{gen: g}, nil
}

func (b *benchGen) limit(n int) trace.Source { return trace.NewLimit(b.gen, n) }

// TestFacadeQuickstart exercises the package-level API end to end, exactly
// as the doc comment advertises.
func TestFacadeQuickstart(t *testing.T) {
	opts := womcpcm.DefaultOptions()
	opts.Geometry = womcpcm.Geometry{Ranks: 4, BanksPerRank: 16, RowsPerBank: 1024,
		ColsPerRow: 128, BitsPerCol: 4, Devices: 16}
	sys, err := womcpcm.NewSystem(womcpcm.Refresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := womcpcm.NewGenerator(womcpcm.MustProfile("qsort"), opts.Geometry, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Simulate(womcpcm.Limit(gen, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if run.WriteLatency.Count == 0 || run.ReadLatency.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if !strings.Contains(run.Summary(), "PCM-refresh") {
		t.Errorf("summary: %s", run.Summary())
	}
}

// TestFacadeExports spot-checks the re-exported names stay wired.
func TestFacadeExports(t *testing.T) {
	if len(womcpcm.Arches()) != 4 {
		t.Error("Arches")
	}
	if got := womcpcm.DefaultTiming().Reset; got != 40 {
		t.Errorf("DefaultTiming.Reset = %d", got)
	}
	if err := womcpcm.VerifyCode(womcpcm.InvRS223()); err != nil {
		t.Error(err)
	}
	if len(womcpcm.Profiles()) != 20 {
		t.Error("Profiles")
	}
	recs := []womcpcm.Record{{Op: trace.Write, Addr: 64, Time: 0}}
	src := womcpcm.Records(recs)
	if _, ok := src.Next(); !ok {
		t.Error("Records source empty")
	}
	mem, err := womcpcm.NewFunctionalMemory(womcpcm.WOMCode, womcpcm.Geometry{
		Ranks: 2, BanksPerRank: 2, RowsPerBank: 16, ColsPerRow: 16, BitsPerCol: 8, Devices: 8,
	}, womcpcm.InvRS223())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Read(0, 3)
	if err != nil || got[1] != 2 {
		t.Errorf("functional read through facade: %v %v", got, err)
	}
}

// TestFacadeMultiChannel drives the channel-scaling extension through the
// facade.
func TestFacadeMultiChannel(t *testing.T) {
	cfg := womcpcm.ControllerConfig{
		Geometry: womcpcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64,
			ColsPerRow: 16, BitsPerCol: 8, Devices: 8},
		Timing: womcpcm.DefaultTiming(),
	}
	mc, err := womcpcm.NewMultiChannel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	run, err := mc.Run(womcpcm.Records([]womcpcm.Record{
		{Op: trace.Write, Addr: 0, Time: 0},
		{Op: trace.Write, Addr: 64, Time: 0}, // next line → other channel
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Parallel channels: both writes complete at activation latency.
	if run.WriteLatency.Max != 197 {
		t.Errorf("parallel channel write latency = %d, want 197", run.WriteLatency.Max)
	}
	if !strings.Contains(run.Arch, "2 channels") {
		t.Errorf("arch label = %q", run.Arch)
	}
}

func TestMustProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProfile did not panic on unknown benchmark")
		}
	}()
	womcpcm.MustProfile("not-a-benchmark")
}
