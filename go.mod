module womcpcm

go 1.22
