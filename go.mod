module womcpcm

go 1.24
